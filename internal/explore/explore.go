// Package explore is the design-space exploration engine: it drives the
// analytical model of packages core/hw/hotspot over large grids of machine
// variants — the software-hardware co-design loop the paper motivates in
// §VI–§VII, where purely analytical projection makes sweeping thousands of
// hypothetical architectures cheap.
//
// The engine adds three things over calling hotspot.Analyze in a loop:
//
//   - a bounded worker pool (default runtime.GOMAXPROCS) with
//     context.Context cancellation and per-variant fault isolation: a
//     variant that fails validation — or panics — yields a Result carrying
//     a *VariantError while the rest of the sweep completes, so one
//     poisoned variant never voids a thousand healthy ones;
//   - memoized per-block characterization: a block's projected time depends
//     only on a subset of machine parameters (the roofline inputs for
//     comp/lib blocks, the network parameters for comm blocks), so variants
//     that leave that subset unchanged reuse cached times — and because the
//     cache stores the exact hotspot.BlockTimes the uncached path computes,
//     cached results are bit-identical to fresh hotspot.Analyze calls;
//   - incremental result streaming with progress counters (variants done,
//     cache hit rate, wall time) plus selection helpers (best variant,
//     Pareto frontier over projected time versus a cost metric).
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"skope/internal/core"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
)

// compKey is the subset of machine parameters the roofline characterization
// of comp and lib blocks can depend on (across the base, vector-aware and
// division-aware models). Variants that agree on every field share the same
// per-block compute/memory times.
type compKey struct {
	freqGHz, fpOps, intOps         float64
	hitL1, hitLLC                  float64
	memConc, memBWGBs              float64
	issueWidth, vectorWidth        int
	divLatCyc                      int
	l1LatCyc, llcLatCyc, memLatCyc int
}

func compKeyOf(m *hw.Machine) compKey {
	return compKey{
		freqGHz: m.FreqGHz, fpOps: m.FPOpsPerCycle, intOps: m.IntOpsPerCycle,
		hitL1: m.HitL1, hitLLC: m.HitLLC,
		memConc: m.MemConcurrency, memBWGBs: m.MemBandwidthGBs,
		issueWidth: m.IssueWidth, vectorWidth: m.VectorWidth,
		divLatCyc: m.DivLatencyCyc,
		l1LatCyc:  m.L1LatencyCyc, llcLatCyc: m.LLCLatencyCyc, memLatCyc: m.MemLatencyCyc,
	}
}

// commKey is the subset of machine parameters comm-block times depend on.
type commKey struct {
	netLatUs, netBWGBs float64
}

func commKeyOf(m *hw.Machine) commKey {
	return commKey{netLatUs: m.NetLatencyUs, netBWGBs: m.NetBandwidthGBs}
}

// CacheStats counts memoization outcomes. A lookup that finds per-block
// times already characterized for the parameter subset is a hit; one that
// has to run the roofline (or interconnect) characterization is a miss.
type CacheStats struct {
	Hits, Misses int
}

// HitRate returns the fraction of lookups served from cache (0 when no
// lookup happened yet).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Progress is a sweep-level snapshot delivered to the OnProgress callback
// after each completed variant.
type Progress struct {
	// Done and Total count variants.
	Done, Total int
	// Cache aggregates memoization counters over the engine's lifetime.
	Cache CacheStats
	// Elapsed is the wall time since the sweep started.
	Elapsed time.Duration
}

// Result is one evaluated variant, streamed as soon as it completes.
// Index is the variant's position in the input slice (results arrive in
// completion order, not input order). Exactly one of Analysis and Err is
// set: a failed variant carries its *VariantError instead of an analysis.
type Result struct {
	Index    int
	Machine  *hw.Machine
	Analysis *hotspot.Analysis
	// Err is the variant's failure (validation, modeling, or a recovered
	// panic), nil on success.
	Err error
}

// Engine evaluates machine variants over one fixed prepared workload.
// It is safe for concurrent use; the memo cache is shared across sweeps,
// so repeated or overlapping grids keep getting cheaper.
type Engine struct {
	layout   *hotspot.Layout
	newModel func(*hw.Machine) *hw.Model
	workers  int
	progress func(Progress)

	mu    sync.Mutex
	comp  map[compKey][]hotspot.BlockTimes
	comm  map[commKey][]hotspot.BlockTimes
	stats CacheStats
}

// Option configures an Engine.
type Option func(*Engine)

// Workers bounds the evaluation pool at n concurrent workers. Values < 1
// leave the default (runtime.GOMAXPROCS) in place.
func Workers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// ModelFunc substitutes the roofline model constructor (default
// hw.NewModel) — e.g. hw.NewVectorAwareModel or hw.NewDivAwareModel for
// the ablation variants. The constructor must derive the model purely from
// the machine's parameters, which all hw model constructors do; otherwise
// the memo cache could serve stale times.
func ModelFunc(f func(*hw.Machine) *hw.Model) Option {
	return func(e *Engine) {
		if f != nil {
			e.newModel = f
		}
	}
}

// OnProgress installs a callback invoked (serially) after each completed
// variant with a sweep-level snapshot.
func OnProgress(f func(Progress)) Option {
	return func(e *Engine) { e.progress = f }
}

// New builds an exploration engine for one modeled workload: the BET and
// the library model of a prepared pipeline run. The machine-independent
// analysis layout is resolved once, here; per-variant work is timing only.
func New(bet *core.BET, libs hotspot.LibModeler, opts ...Option) (*Engine, error) {
	l, err := hotspot.NewLayout(bet, libs)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	e := &Engine{
		layout:   l,
		newModel: hw.NewModel,
		workers:  runtime.GOMAXPROCS(0),
		comp:     make(map[compKey][]hotspot.BlockTimes),
		comm:     make(map[commKey][]hotspot.BlockTimes),
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// CacheStats returns the cumulative memoization counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// evaluate projects one variant, reusing cached per-block times when the
// relevant parameter subset has been characterized before. A panic anywhere
// below (a poisoned model constructor, a corrupted cache entry) is recovered
// into an error wrapping guard.ErrPanic — the worker pool stays alive. The
// guard.Hit call is a fault-injection point (no-op unless a test arms
// "explore.evaluate").
func (e *Engine) evaluate(m *hw.Machine) (a *hotspot.Analysis, err error) {
	defer guard.Recover(&err, "evaluate %s", m.Name)
	guard.Hit("explore.evaluate", m.Name)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	comp, ok := e.lookupComp(m)
	if !ok {
		comp = e.layout.CompTimes(e.newModel(m))
		e.storeComp(m, comp)
	}
	comm, ok := e.lookupComm(m)
	if !ok {
		comm = e.layout.CommTimes(m)
		e.storeComm(m, comm)
	}
	return e.layout.Assemble(m, comp, comm)
}

func (e *Engine) lookupComp(m *hw.Machine) ([]hotspot.BlockTimes, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt, ok := e.comp[compKeyOf(m)]
	if ok {
		e.stats.Hits++
	} else {
		e.stats.Misses++
	}
	return bt, ok
}

func (e *Engine) storeComp(m *hw.Machine, bt []hotspot.BlockTimes) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comp[compKeyOf(m)] = bt
}

func (e *Engine) lookupComm(m *hw.Machine) ([]hotspot.BlockTimes, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt, ok := e.comm[commKeyOf(m)]
	if ok {
		e.stats.Hits++
	} else {
		e.stats.Misses++
	}
	return bt, ok
}

func (e *Engine) storeComm(m *hw.Machine, bt []hotspot.BlockTimes) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comm[commKeyOf(m)] = bt
}

// Stream evaluates the variants through the bounded pool, sending each
// Result on the returned channel as it completes. Variant failures are
// isolated: a variant that fails validation, modeling, or panics yields a
// Result whose Err is a *VariantError, and the remaining variants keep
// going. Only context cancellation stops the sweep early; the channel
// closes when every variant is done or the context is canceled. The
// returned wait function blocks until all workers have exited and reports
// the sweep's outcome: nil, or the context's error — always wrapped, so
// callers can errors.Is against context.Canceled and friends. Per-variant
// errors travel on the Results, not through wait.
func (e *Engine) Stream(ctx context.Context, variants []*hw.Machine) (<-chan Result, func() error) {
	out := make(chan Result)
	sctx, cancel := context.WithCancel(ctx)

	work := make(chan int)
	go func() {
		defer close(work)
		for i := range variants {
			select {
			case work <- i:
			case <-sctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var (
		doneMu sync.Mutex
		done   int
	)
	finish := func() {
		doneMu.Lock()
		defer doneMu.Unlock()
		done++
		if e.progress != nil {
			e.progress(Progress{
				Done: done, Total: len(variants),
				Cache:   e.CacheStats(),
				Elapsed: time.Since(start),
			})
		}
	}

	workers := e.workers
	if workers > len(variants) {
		workers = len(variants)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if sctx.Err() != nil {
					return
				}
				r := Result{Index: i, Machine: variants[i]}
				a, err := e.evaluate(variants[i])
				if err != nil {
					r.Err = &VariantError{Index: i, Machine: variants[i], Err: err}
				} else {
					r.Analysis = a
				}
				select {
				case out <- r:
					finish()
				case <-sctx.Done():
					return
				}
			}
		}()
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(out)
		close(finished)
	}()
	wait := func() error {
		<-finished
		defer cancel()
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("explore: sweep canceled: %w", err)
		}
		return nil
	}
	return out, wait
}

// Sweep evaluates every variant and returns the analyses index-aligned
// with the input. Failed variants leave a nil at their index, and the
// failures come back aggregated in a *SweepError alongside the healthy
// results — a sweep with errors is degraded, not void. Cancellation (the
// only way to lose healthy results) returns nil analyses and the wrapped
// context error.
func (e *Engine) Sweep(ctx context.Context, variants []*hw.Machine) ([]*hotspot.Analysis, error) {
	out := make([]*hotspot.Analysis, len(variants))
	var failures []*VariantError
	results, wait := e.Stream(ctx, variants)
	for r := range results {
		if r.Err != nil {
			var ve *VariantError
			if !errors.As(r.Err, &ve) {
				ve = &VariantError{Index: r.Index, Machine: r.Machine, Err: r.Err}
			}
			failures = append(failures, ve)
			continue
		}
		out[r.Index] = r.Analysis
	}
	if err := wait(); err != nil {
		return nil, err
	}
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
		return out, &SweepError{Variants: failures}
	}
	return out, nil
}
