package explore

import (
	"fmt"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/store"
)

// This file connects the engine to the content-addressed result store
// (internal/store) — the cross-sweep, cross-process complement of the
// sweep journal:
//
//   - the journal is per-sweep state: bound to one layout fingerprint,
//     replayed in full at bind time, usually deleted when its sweep ends;
//   - the store is shared state: keyed by (layout, machine, mode)
//     fingerprints, it serves any sweep of any workload that hashes to the
//     same identity, indefinitely.
//
// The lookup order inside a worker is journal → store → evaluate: the
// journal is authoritative for this sweep (its entries already passed this
// sweep's meta binding), the store is the global fallback, and only a miss
// on both computes. Fresh evaluations and journal replays are both written
// through to the store (best-effort, sticky failure — identical contract
// to journal writes), so finishing a journaled sweep also warms the store.

// CAS attaches a content-addressed result store to the engine. mode is the
// evaluation-mode digest (store.ModeDigest) under which this engine's
// results are addressed — the caller owns folding its criteria, lenient
// flag, and confidence floor into it. The store is consulted after the
// sweep journal and before any computation; hits are grafted onto the
// engine's layout, so they carry Node links like freshly computed analyses.
// The store is owned by the caller (Close it after the sweep).
func CAS(s *store.Store, mode string) Option {
	return func(e *Engine) {
		e.cas = s
		e.casMode = mode
	}
}

// LayoutFingerprint exposes the engine's layout identity — the first
// component of the store's eval keys, and the value daemon sessions report
// so a client can correlate a session with store contents.
func (e *Engine) LayoutFingerprint() string { return e.layout.Fingerprint() }

// casGet looks the variant up in the attached store. A hit is grafted onto
// the engine's layout; a record that fails to decode or graft (version
// skew, fingerprint collision) is treated as a miss and recorded as the
// sticky store error rather than failing the variant.
func (e *Engine) casGet(m *hw.Machine) (*hotspot.Analysis, bool) {
	if e.cas == nil {
		return nil, false
	}
	a, ok, err := e.cas.GetEval(e.layout.Fingerprint(), m.Fingerprint(), e.casMode)
	if err == nil && ok {
		err = e.layout.Graft(a)
	}
	if err != nil {
		e.casFail(err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	return a, true
}

// casPut writes one completed variant through to the store. Like
// journalAppend, a write failure never fails the variant: it disables
// further store writes and surfaces once from the sweep's wait error.
func (e *Engine) casPut(m *hw.Machine, a *hotspot.Analysis) {
	if e.cas == nil {
		return
	}
	e.mu.Lock()
	broken := e.casErr != nil
	e.mu.Unlock()
	if broken {
		return
	}
	if err := e.cas.PutEval(e.layout.Fingerprint(), m.Fingerprint(), e.casMode, a); err != nil {
		e.casFail(err)
	}
}

// casFail records the first store failure; the sweep continues uncached.
func (e *Engine) casFail(err error) {
	e.mu.Lock()
	if e.casErr == nil {
		e.casErr = fmt.Errorf("explore: %w: store disabled after failure (sweep continues uncached): %w",
			store.ErrDegraded, err)
	}
	e.mu.Unlock()
}

// casError returns the sticky store failure, if any.
func (e *Engine) casError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.casErr
}
