package explore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"skope/internal/hotspot"
	"skope/internal/hw"
)

// This file is the surrogate-guided acquisition loop: instead of
// evaluating a grid exhaustively, Engine.Adaptive evaluates a small
// deterministic seed sample, fits the Surrogate, and then spends each
// round's evaluations only on the unevaluated variants the surrogate
// ranks most promising (predicted objective minus an exploration bonus
// for under-sampled regions), stopping once the incumbent optimum has
// survived a configured number of rounds unimproved.
//
// The split of responsibilities matters for the distributed path: the
// AdaptivePlanner is pure bookkeeping — which grid indices to evaluate
// next, what has been observed, when to stop — with no engine, journal,
// or store dependency, so internal/shard can drive the identical policy
// by mailing each round out as a sharded job. Engine.Adaptive is the
// in-process driver: each round's batch flows through Engine.Stream, so
// journaling, CAS store hits, retries, breakers, and MinConfidence all
// compose with adaptive search unchanged. Exact (exhaustive) mode remains
// the golden reference; adaptive mode trades completeness for evaluations
// and is asserted against it in the parity tests.

// AdaptiveOptions configures the acquisition loop. The zero value asks
// for defaults everywhere, which the planner resolves against the grid's
// dimensionality.
type AdaptiveOptions struct {
	// Seed keys the deterministic seed subsample: the first round
	// evaluates the SeedSize variants whose sha256(seed || machine
	// fingerprint) digests sort lowest. Changing the seed changes which
	// variants bootstrap the surrogate; a fixed seed makes the whole
	// adaptive run — round trace included — deterministic.
	Seed uint64
	// SeedSize is the size of the bootstrap sample. Default
	// max(8, 2·axes+3): enough samples that the ridge fit over 2·axes
	// features starts from a determined-ish system.
	SeedSize int
	// RoundFraction is the fraction of the grid evaluated per acquisition
	// round (the "top quantile"). Default 0.01, minimum one variant.
	RoundFraction float64
	// MinRounds is the minimum number of rounds (seed round included)
	// before convergence can be declared. Default 3.
	MinRounds int
	// Patience is how many consecutive rounds the incumbent must survive
	// unimproved before the search stops. Default 2.
	Patience int
	// MaxEvals caps the total evaluations spent (seed sample included).
	// 0 means no cap beyond the grid itself. The cap is a hard budget:
	// rounds shrink to fit and the search stops when it is exhausted.
	MaxEvals int
	// Explore scales the exploration bonus: a candidate's score is its
	// predicted objective minus Explore·sd(y)·(normalized distance to the
	// nearest evaluated variant), so under-sampled regions get evaluated
	// even when the surrogate ranks them mid-pack. Default 0.3.
	Explore float64
	// OnRound, if set, receives each round's trace as it completes.
	OnRound func(RoundTrace)
}

// withDefaults resolves zero-valued options against the grid
// dimensionality.
func (o AdaptiveOptions) withDefaults(dims int) AdaptiveOptions {
	if o.SeedSize <= 0 {
		o.SeedSize = 2*dims + 3
		if o.SeedSize < 8 {
			o.SeedSize = 8
		}
	}
	if o.RoundFraction <= 0 || o.RoundFraction > 1 {
		o.RoundFraction = 0.01
	}
	if o.MinRounds <= 0 {
		o.MinRounds = 3
	}
	if o.Patience <= 0 {
		o.Patience = 2
	}
	if o.Explore <= 0 {
		o.Explore = 0.3
	}
	if o.MaxEvals < 0 {
		o.MaxEvals = 0
	}
	return o
}

// RoundTrace is one completed acquisition round, streamed via Progress
// (and skoped's NDJSON session stream) and recorded on the AdaptiveResult.
type RoundTrace struct {
	// Round numbers rounds from 1 (the seed round).
	Round int `json:"round"`
	// Evals is the number of evaluations issued this round; TotalEvals
	// the cumulative spend; GridSize the full grid for comparison.
	Evals      int `json:"evals"`
	TotalEvals int `json:"total_evals"`
	GridSize   int `json:"grid_size"`
	// Incumbent is the grid index of the best variant seen so far (-1
	// before any variant succeeds), IncumbentFP its machine fingerprint,
	// IncumbentTime its projected total time.
	Incumbent     int     `json:"incumbent"`
	IncumbentFP   string  `json:"incumbent_fp,omitempty"`
	IncumbentTime float64 `json:"incumbent_time"`
	// R2 is the surrogate's training-set weighted R² after this round's
	// fit — how much of the observed objective variance the model
	// explains (can be negative while the fit is worse than the mean).
	R2 float64 `json:"r2"`
	// Converged marks the round at which the incumbent met the patience
	// criterion; the search stops after a converged round.
	Converged bool `json:"converged"`
}

// AdaptivePlanner is the engine-independent core of adaptive search: it
// owns the grid bookkeeping (which indices have been issued and observed),
// the surrogate, the incumbent, and the stopping rule. Drivers alternate
// NextRound (get a batch of grid indices to evaluate), Observe /
// ObserveFailure (report each batch member), and EndRound (fit + trace).
// It is not safe for concurrent use; drivers serialize rounds.
type AdaptivePlanner struct {
	opt      AdaptiveOptions
	variants []*hw.Machine
	feats    [][]float64 // per-variant raw axis values
	norm     [][]float64 // per-variant range-normalized axis coords
	sur      *Surrogate

	issued    []bool // handed out by NextRound (or directly observed)
	spent     int    // number of issued indices
	lastBatch int    // size of the most recent round's batch
	round     int    // completed-or-started round count

	bestIdx   int
	bestTime  float64
	hasBest   bool
	roundBest float64 // incumbent time at the start of the current round
	roundHad  bool
	stale     int
	done      bool
	converged bool
	traces    []RoundTrace
}

// NewAdaptivePlanner builds a planner over a materialized grid. variants
// must be exactly Grid{Base, Axes: axes}.Variants() — odometer order, last
// axis fastest — because each variant's axis values are recovered from its
// grid index, not from the machine struct.
func NewAdaptivePlanner(variants []*hw.Machine, axes []Axis, opt AdaptiveOptions) (*AdaptivePlanner, error) {
	size := 1
	for _, ax := range axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("explore: adaptive axis %s has no values", ax.Param)
		}
		size *= len(ax.Values)
	}
	if size != len(variants) {
		return nil, fmt.Errorf("explore: adaptive planner got %d variants but the axes span %d grid points (variants must be Grid.Variants output)",
			len(variants), size)
	}

	dims := len(axes)
	strides := make([]int, dims)
	s := 1
	for i := dims - 1; i >= 0; i-- {
		strides[i] = s
		s *= len(axes[i].Values)
	}
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for i, ax := range axes {
		lo[i], hi[i] = ax.Values[0], ax.Values[0]
		for _, v := range ax.Values {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	p := &AdaptivePlanner{
		opt:      opt.withDefaults(dims),
		variants: variants,
		feats:    make([][]float64, len(variants)),
		norm:     make([][]float64, len(variants)),
		sur:      NewSurrogate(dims),
		issued:   make([]bool, len(variants)),
		bestIdx:  -1,
	}
	for g := range variants {
		f := make([]float64, dims)
		nm := make([]float64, dims)
		for i := 0; i < dims; i++ {
			v := axes[i].Values[(g/strides[i])%len(axes[i].Values)]
			f[i] = v
			if hi[i] > lo[i] {
				nm[i] = (v - lo[i]) / (hi[i] - lo[i])
			}
		}
		p.feats[g] = f
		p.norm[g] = nm
	}
	return p, nil
}

// GridSize returns the number of variants in the planner's grid.
func (p *AdaptivePlanner) GridSize() int { return len(p.variants) }

// Evals returns the evaluations issued so far (the adaptive spend).
func (p *AdaptivePlanner) Evals() int { return p.spent }

// Converged reports whether the search stopped because the incumbent
// survived Patience rounds unimproved (as opposed to exhausting the
// budget or the grid).
func (p *AdaptivePlanner) Converged() bool { return p.converged }

// Traces returns the per-round trace accumulated so far.
func (p *AdaptivePlanner) Traces() []RoundTrace { return p.traces }

// Incumbent returns the grid index and objective of the best observed
// variant; ok is false before any variant succeeds.
func (p *AdaptivePlanner) Incumbent() (idx int, y float64, ok bool) {
	return p.bestIdx, p.bestTime, p.hasBest
}

// budget returns the remaining evaluation budget (-1 for unlimited).
func (p *AdaptivePlanner) budget() int {
	if p.opt.MaxEvals <= 0 {
		return -1
	}
	b := p.opt.MaxEvals - p.spent
	if b < 0 {
		b = 0
	}
	return b
}

// NextRound returns the grid indices to evaluate next, in ascending
// order, or nil when the search is over (converged, budget exhausted, or
// grid exhausted). Round 1 is the deterministic fingerprint-keyed seed
// sample; later rounds are the surrogate's top-ranked unevaluated
// candidates. Indices are never handed out twice.
func (p *AdaptivePlanner) NextRound() []int {
	if p.done {
		return nil
	}
	budget := p.budget()
	if budget == 0 {
		p.done = true
		return nil
	}
	var batch []int
	if p.round == 0 {
		batch = p.seedBatch(budget)
	} else {
		batch = p.rankedBatch(budget)
	}
	if len(batch) == 0 {
		p.done = true
		return nil
	}
	for _, g := range batch {
		p.issued[g] = true
	}
	p.spent += len(batch)
	p.lastBatch = len(batch)
	p.round++
	p.roundBest, p.roundHad = p.bestTime, p.hasBest
	return batch
}

// seedBatch picks the bootstrap sample: the SeedSize variants whose
// sha256(seed || fingerprint) digests sort lowest — a deterministic,
// well-scattered subsample keyed only on stable identities, so the same
// seed re-picks the same variants across processes and resumes.
func (p *AdaptivePlanner) seedBatch(budget int) []int {
	n := p.opt.SeedSize
	if budget >= 0 && n > budget {
		n = budget
	}
	var seed8 [8]byte
	binary.BigEndian.PutUint64(seed8[:], p.opt.Seed)
	type keyed struct {
		digest [sha256.Size]byte
		idx    int
	}
	ks := make([]keyed, 0, len(p.variants))
	for i, m := range p.variants {
		if p.issued[i] {
			continue
		}
		h := sha256.New()
		h.Write(seed8[:])
		h.Write([]byte(m.Fingerprint()))
		k := keyed{idx: i}
		h.Sum(k.digest[:0])
		ks = append(ks, k)
	}
	sort.Slice(ks, func(a, b int) bool {
		if c := bytes.Compare(ks[a].digest[:], ks[b].digest[:]); c != 0 {
			return c < 0
		}
		return ks[a].idx < ks[b].idx
	})
	if n > len(ks) {
		n = len(ks)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = ks[i].idx
	}
	sort.Ints(out)
	return out
}

// rankedBatch picks the next acquisition round: every unevaluated
// candidate is scored by predicted objective minus the exploration bonus,
// and the RoundFraction quantile with the lowest (best) scores is
// returned. Ties break on grid index, so ranking is a deterministic
// function of the observations.
func (p *AdaptivePlanner) rankedBatch(budget int) []int {
	size := int(p.opt.RoundFraction * float64(len(p.variants)))
	if size < 1 {
		size = 1
	}
	if budget >= 0 && size > budget {
		size = budget
	}
	var evaluated [][]float64
	for g, is := range p.issued {
		if is {
			evaluated = append(evaluated, p.norm[g])
		}
	}
	sd := p.sur.YStd()
	type scored struct {
		score float64
		idx   int
	}
	var cands []scored
	for g, is := range p.issued {
		if is {
			continue
		}
		score := p.sur.Predict(p.feats[g])
		if p.opt.Explore > 0 && sd > 0 {
			score -= p.opt.Explore * sd * p.exploreBonus(p.norm[g], evaluated)
		}
		cands = append(cands, scored{score, g})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score < cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	if size > len(cands) {
		size = len(cands)
	}
	out := make([]int, size)
	for i := 0; i < size; i++ {
		out[i] = cands[i].idx
	}
	sort.Ints(out)
	return out
}

// exploreBonus is the normalized distance from one candidate to its
// nearest evaluated neighbor in range-normalized axis space — 0 right on
// top of an observation, approaching 1 in the farthest unexplored corner.
func (p *AdaptivePlanner) exploreBonus(x []float64, evaluated [][]float64) float64 {
	dims := len(x)
	if dims == 0 || len(evaluated) == 0 {
		return 0
	}
	best := -1.0
	for _, e := range evaluated {
		var d2 float64
		for i, v := range x {
			dv := v - e[i]
			d2 += dv * dv
		}
		if best < 0 || d2 < best {
			best = d2
			if best == 0 {
				break
			}
		}
	}
	// Max possible squared distance in the unit hypercube is dims.
	if best <= 0 {
		return 0
	}
	return math.Sqrt(best / float64(dims))
}

// Observe reports one successful evaluation of an issued grid index: the
// objective (projected total time) trains the surrogate weighted by the
// evaluation's confidence, and the incumbent advances under the same rule
// Best uses (strict improvement; on exact ties the lower grid index wins).
func (p *AdaptivePlanner) Observe(gridIdx int, y, confidence float64) {
	if gridIdx < 0 || gridIdx >= len(p.variants) {
		return
	}
	p.issued[gridIdx] = true
	// A non-finite objective cannot train the surrogate; count the spend
	// but treat the sample as a failure.
	if err := p.sur.Observe(p.feats[gridIdx], y, confidence); err != nil {
		return
	}
	if !p.hasBest || y < p.bestTime || (y == p.bestTime && gridIdx < p.bestIdx) {
		p.bestIdx, p.bestTime, p.hasBest = gridIdx, y, true
	}
}

// ObserveFailure reports a failed evaluation: the index is consumed (it
// will not be handed out again) but contributes nothing to the fit.
func (p *AdaptivePlanner) ObserveFailure(gridIdx int) {
	if gridIdx < 0 || gridIdx >= len(p.variants) {
		return
	}
	p.issued[gridIdx] = true
}

// EndRound closes the current round: refits the surrogate on everything
// observed, advances the patience counter, decides convergence, and
// appends + returns the round's trace.
func (p *AdaptivePlanner) EndRound() RoundTrace {
	p.sur.Fit()
	improved := p.hasBest && (!p.roundHad || p.bestTime < p.roundBest)
	if improved {
		p.stale = 0
	} else {
		p.stale++
	}
	conv := p.round >= p.opt.MinRounds && p.stale >= p.opt.Patience
	if conv {
		p.done = true
		p.converged = true
	}
	tr := RoundTrace{
		Round:      p.round,
		Evals:      p.lastBatch,
		TotalEvals: p.spent,
		GridSize:   len(p.variants),
		Incumbent:  p.bestIdx,
		R2:         p.sur.R2(),
		Converged:  conv,
	}
	if p.hasBest {
		tr.IncumbentFP = p.variants[p.bestIdx].Fingerprint()
		tr.IncumbentTime = p.bestTime
	}
	p.traces = append(p.traces, tr)
	return tr
}

// AdaptiveResult is the outcome of one surrogate-guided search.
type AdaptiveResult struct {
	// BestIndex is the grid index of the optimum among evaluated variants
	// (-1 if nothing succeeded); Best the variant, BestAnalysis its exact
	// analysis. The optimum is always an exact engine evaluation — the
	// surrogate only chose what to evaluate.
	BestIndex    int
	Best         *hw.Machine
	BestAnalysis *hotspot.Analysis
	// Analyses is index-aligned with the input grid; unevaluated and
	// failed variants leave a nil. Typically ~5% of entries are set.
	Analyses []*hotspot.Analysis
	// Results holds the full engine Result (provenance flags, attempt
	// counts) for each successful evaluation, index-aligned with the grid
	// and with Index rewritten from batch position to grid index; entries
	// are zero-valued (Machine == nil) exactly where Analyses is nil.
	Results []Result
	// Evals is the number of evaluations issued (≪ GridSize when the
	// search converged), GridSize the exhaustive count for comparison.
	Evals    int
	GridSize int
	// Rounds is the full acquisition trace.
	Rounds []RoundTrace
	// Converged reports a patience stop (false: budget or grid exhausted).
	Converged bool
}

// Adaptive runs the surrogate-guided search over a materialized grid.
// variants must be the axes' Grid.Variants output (odometer order); each
// round's batch is evaluated through Stream, so the engine's journal, CAS
// store, retries, breaker, and confidence floor apply exactly as in an
// exhaustive sweep. An issued index counts against the budget regardless
// of how it was served (fresh, journal replay, or store hit), so a
// resumed run retraces the identical round sequence — it just pays zero
// recomputation for the rounds the journal already holds.
//
// Failed variants are consumed without training the surrogate and come
// back aggregated in a *SweepError, like Sweep. Cancellation returns a
// nil result and the wrapped context error. Journal/CAS degradation is
// reported alongside the intact result, like Sweep.
func (e *Engine) Adaptive(ctx context.Context, variants []*hw.Machine, axes []Axis, opt AdaptiveOptions) (*AdaptiveResult, error) {
	p, err := NewAdaptivePlanner(variants, axes, opt)
	if err != nil {
		return nil, err
	}
	res := &AdaptiveResult{
		BestIndex: -1,
		GridSize:  len(variants),
		Analyses:  make([]*hotspot.Analysis, len(variants)),
		Results:   make([]Result, len(variants)),
	}
	start := time.Now()
	var failures []*VariantError
	var replayed, stored, retried int
	for {
		batch := p.NextRound()
		if len(batch) == 0 {
			break
		}
		ms := make([]*hw.Machine, len(batch))
		for i, g := range batch {
			ms[i] = variants[g]
		}
		type gridResult struct {
			grid int
			r    Result
		}
		collected := make([]gridResult, 0, len(batch))
		results, wait := e.Stream(ctx, ms)
		for r := range results {
			collected = append(collected, gridResult{batch[r.Index], r})
		}
		if werr := wait(); werr != nil && (errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded)) {
			// Cancellation is the only way to lose the search state.
			return nil, werr
		}
		// Observation order must not depend on worker-pool completion
		// order, or the fit (and with it every later round) would be
		// nondeterministic.
		sort.Slice(collected, func(i, j int) bool { return collected[i].grid < collected[j].grid })
		for _, c := range collected {
			if c.r.Err != nil {
				var ve *VariantError
				if !errors.As(c.r.Err, &ve) {
					ve = &VariantError{Machine: c.r.Machine, MachineName: c.r.Machine.Name, Err: c.r.Err}
				}
				// Re-attribute from batch position to grid index.
				ve.Index = c.grid
				failures = append(failures, ve)
				p.ObserveFailure(c.grid)
				continue
			}
			if c.r.Replayed {
				replayed++
			}
			if c.r.Stored {
				stored++
			}
			if c.r.Attempts > 1 {
				retried += c.r.Attempts - 1
			}
			c.r.Index = c.grid
			res.Analyses[c.grid] = c.r.Analysis
			res.Results[c.grid] = c.r
			p.Observe(c.grid, c.r.Analysis.TotalTime, c.r.Analysis.Confidence)
		}
		tr := p.EndRound()
		if e.progress != nil {
			snap := tr
			e.progress(Progress{
				Done: p.Evals(), Total: len(variants),
				Replayed: replayed, Stored: stored, Retried: retried,
				Cache:    e.CacheStats(),
				Elapsed:  time.Since(start),
				Adaptive: &snap,
			})
		}
		if opt.OnRound != nil {
			opt.OnRound(tr)
		}
	}
	res.Rounds = p.Traces()
	res.Converged = p.Converged()
	res.Evals = p.Evals()
	if idx, _, ok := p.Incumbent(); ok {
		res.BestIndex = idx
		res.Best = variants[idx]
		res.BestAnalysis = res.Analyses[idx]
	}
	var errs []error
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
		errs = append(errs, &SweepError{Variants: failures})
	}
	if jerr := e.journalError(); jerr != nil {
		errs = append(errs, jerr)
	}
	if cerr := e.casError(); cerr != nil {
		errs = append(errs, cerr)
	}
	return res, errors.Join(errs...)
}
