package explore_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/store"
)

// casEngine builds an engine over the shared prepared run with a store
// attached under the default evaluation mode.
func casEngine(t *testing.T, s *store.Store, opts ...explore.Option) *explore.Engine {
	t.Helper()
	run := prepared(t, "srad")
	mode := store.ModeDigest(hotspot.DefaultCriteria(), false, 0)
	eng, err := explore.New(run.BET, run.Libs, append(opts, explore.CAS(s, mode))...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func casGrid(t *testing.T) []*hw.Machine {
	t.Helper()
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "mem-bandwidth", Values: []float64{16, 32, 64}},
		{Param: "freq-ghz", Values: []float64{1.6, 2.4}},
	}}
	vs, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestCASWarmSweepSkipsEvaluation proves the store contract end to end:
// a cold sweep populates the store; a second sweep — fresh engine, no
// journal, no shared memo cache — is served entirely from it, with zero
// evaluations (enforced by arming the evaluate fault point) and
// bit-identical analyses.
func TestCASWarmSweepSkipsEvaluation(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	variants := casGrid(t)

	cold := casEngine(t, s)
	coldRes, err := cold.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Puts != len(variants) {
		t.Fatalf("cold sweep stored %d results, want %d", st.Puts, len(variants))
	}

	// Any evaluation during the warm sweep is a hard failure.
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		t.Errorf("warm sweep evaluated variant %s", detail)
	})
	defer disarm()

	warm := casEngine(t, s)
	stored := 0
	results, wait := warm.Stream(context.Background(), variants)
	warmRes := make([]*hotspot.Analysis, len(variants))
	for r := range results {
		if r.Err != nil {
			t.Fatalf("variant %d: %v", r.Index, r.Err)
		}
		if !r.Stored {
			t.Errorf("variant %d not served from store", r.Index)
		}
		if r.Stored {
			stored++
		}
		warmRes[r.Index] = r.Analysis
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if stored != len(variants) {
		t.Fatalf("%d/%d variants served from store", stored, len(variants))
	}

	for i := range variants {
		e1, err := hotspot.EncodeAnalysis(coldRes[i])
		if err != nil {
			t.Fatal(err)
		}
		e2, err := hotspot.EncodeAnalysis(warmRes[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1, e2) {
			t.Errorf("variant %d: warm analysis not bit-identical to cold", i)
		}
		// Store hits are grafted: Node links are live, like fresh results.
		for _, b := range warmRes[i].Blocks {
			if len(b.Nodes) == 0 {
				t.Fatalf("variant %d block %s: no Nodes after store hit", i, b.BlockID)
			}
		}
	}
}

// TestCASModeIsolation: results stored under one evaluation mode must not
// be served under another.
func TestCASModeIsolation(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run := prepared(t, "srad")
	variants := casGrid(t)[:2]

	eng1, err := explore.New(run.BET, run.Libs,
		explore.CAS(s, store.ModeDigest(hotspot.DefaultCriteria(), false, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng1.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}

	crit := hotspot.DefaultCriteria()
	crit.MaxSpots = 1
	eng2, err := explore.New(run.BET, run.Libs,
		explore.CAS(s, store.ModeDigest(crit, false, 0)))
	if err != nil {
		t.Fatal(err)
	}
	results, wait := eng2.Stream(context.Background(), variants)
	for r := range results {
		if r.Stored {
			t.Errorf("variant %d crossed evaluation modes", r.Index)
		}
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

// TestCASJournalWriteThrough: replaying a sweep journal also warms the
// store, so a journaled sweep's results become globally addressable.
func TestCASJournalWriteThrough(t *testing.T) {
	dir := t.TempDir()
	run := prepared(t, "srad")
	variants := casGrid(t)[:3]

	// Sweep 1: journal only.
	eng1, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := eng1.UseJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng1.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	// Sweep 2: resume the journal with a store attached; every variant is
	// replayed from the journal and written through.
	s, err := store.Open(filepath.Join(dir, "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	eng2, err := explore.New(run.BET, run.Libs,
		explore.CAS(s, store.ModeDigest(hotspot.DefaultCriteria(), false, 0)))
	if err != nil {
		t.Fatal(err)
	}
	jnl2, err := eng2.UseJournal(filepath.Join(dir, "sweep.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if eng2.Replayable() != len(variants) {
		t.Fatalf("Replayable = %d, want %d", eng2.Replayable(), len(variants))
	}
	if _, err := eng2.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Puts != len(variants) {
		t.Fatalf("journal replay wrote %d results through, want %d", st.Puts, len(variants))
	}
}
