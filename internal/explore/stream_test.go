package explore_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"skope/internal/explore"
	"skope/internal/hw"
)

// streamVariants builds n distinct-communication BGQ variants (comp times
// memoize to one entry, comm times are all distinct).
func streamVariants(n int) []*hw.Machine {
	out := make([]*hw.Machine, n)
	for i := range out {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("s%d", i)
		m.NetLatencyUs = float64(i + 1)
		out[i] = m
	}
	return out
}

// TestStreamCancellationAbandonedConsumer cancels a sweep and then walks
// away without draining the results channel — the harshest consumer. The
// workers block sending into the unread channel; cancellation must unblock
// them, wait() must return the wrapped context error rather than hang, and
// no goroutine may outlive the sweep.
func TestStreamCancellationAbandonedConsumer(t *testing.T) {
	run := prepared(t, "sord")
	eng, err := explore.New(run.BET, run.Libs, explore.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	results, wait := eng.Stream(ctx, streamVariants(500))
	// Consume just enough to know the pool is live, then abandon.
	if _, ok := <-results; !ok {
		t.Fatal("stream closed before first result")
	}
	cancel()
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("wait() = %v, want wrapped context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestCacheStatsConservation drives one sweep through many racing workers
// and checks the memoization counters balance exactly: every variant does
// one computation lookup and one communication lookup, so under any
// interleaving Hits+Misses must equal 2x the variant count, and each
// distinct parameter subset must miss exactly once. Run under -race this
// doubles as a data-race check on the counter updates.
func TestCacheStatsConservation(t *testing.T) {
	run := prepared(t, "sord")
	const n = 64
	variants := streamVariants(n)
	eng, err := explore.New(run.BET, run.Libs, explore.Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range out {
		if a == nil {
			t.Fatalf("variant %d missing", i)
		}
	}
	stats := eng.CacheStats()
	if got := stats.Hits + stats.Misses; got != 2*n {
		t.Errorf("Hits(%d)+Misses(%d) = %d, want %d (two lookups per variant)",
			stats.Hits, stats.Misses, got, 2*n)
	}
	// All variants share compute parameters (1 comp miss) and have n
	// distinct communication parameter sets (n comm misses).
	if stats.Misses != n+1 {
		t.Errorf("Misses = %d, want %d (1 comp subset + %d comm subsets)", stats.Misses, n+1, n)
	}
	// A second identical sweep must be all hits and still balance.
	if _, err := eng.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}
	stats2 := eng.CacheStats()
	if got := stats2.Hits + stats2.Misses; got != 4*n {
		t.Errorf("after resweep Hits(%d)+Misses(%d) = %d, want %d",
			stats2.Hits, stats2.Misses, got, 4*n)
	}
	if stats2.Misses != stats.Misses {
		t.Errorf("resweep added misses: %d -> %d, want all hits", stats.Misses, stats2.Misses)
	}
}
