package explore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
)

// This file is the engine's durability glue: how completed variants are
// serialized into the sweep journal and replayed out of it.
//
// A journal record stores the variant's per-block times (the exact
// hotspot.BlockTimes the evaluation assembled its analysis from) rather
// than the assembled analysis itself. Replay re-runs Assemble over the
// journaled times — the same deterministic code path a cache hit takes —
// so a resumed sweep is bit-identical to an uninterrupted one by
// construction, and the record stays small. Floats travel as IEEE-754 bit
// patterns (math.Float64bits), never as decimal text, so round-tripping
// cannot perturb a single ulp.

// MetaLayoutKey is the journal meta key that binds a sweep journal to the
// layout fingerprint of the workload that wrote it. Exported for tools
// that handle sweep journals without an engine — the shard coordinator
// merges worker journals under the same binding, so a merged journal is
// directly resumable by UseJournal.
const MetaLayoutKey = "layout"

// metaLayoutKey is the internal alias (predates the export).
const metaLayoutKey = MetaLayoutKey

// ErrJournalDegraded marks a sweep whose analyses are all intact but
// whose journal stopped accepting writes mid-run: results are complete,
// crash-resume coverage is partial. Callers that treat durability as
// best-effort can errors.Is for this and downgrade to a warning.
var ErrJournalDegraded = errors.New("sweep journal degraded")

// replayEntry is one decoded journal record.
type replayEntry struct {
	comp, comm []hotspot.BlockTimes
	// conf is the confidence score the original run assembled with, nil
	// for records written before confidence tracking existed.
	conf *float64
}

// recTimes is the wire form of one hotspot.BlockTimes.
type recTimes struct {
	Tc uint64 `json:"tc"`
	Tm uint64 `json:"tm"`
	To uint64 `json:"to"`
	T  uint64 `json:"t"`
	MB bool   `json:"mb,omitempty"`
}

// sweepRecord is the wire form of one completed variant. Conf carries the
// assembled analysis's confidence score as IEEE-754 bits; it is a pointer
// so records written before confidence tracking decode to nil (replay then
// keeps the recomputed score) instead of a spurious 0.
type sweepRecord struct {
	Machine string     `json:"machine"`
	Comp    []recTimes `json:"comp"`
	Comm    []recTimes `json:"comm"`
	Conf    *uint64    `json:"conf,omitempty"`
}

func encodeTimes(in []hotspot.BlockTimes) []recTimes {
	out := make([]recTimes, len(in))
	for i, bt := range in {
		out[i] = recTimes{
			Tc: math.Float64bits(bt.Tc), Tm: math.Float64bits(bt.Tm),
			To: math.Float64bits(bt.To), T: math.Float64bits(bt.T),
			MB: bt.MemoryBound,
		}
	}
	return out
}

func decodeTimes(in []recTimes) []hotspot.BlockTimes {
	out := make([]hotspot.BlockTimes, len(in))
	for i, rt := range in {
		out[i] = hotspot.BlockTimes{
			Tc: math.Float64frombits(rt.Tc), Tm: math.Float64frombits(rt.Tm),
			To: math.Float64frombits(rt.To), T: math.Float64frombits(rt.T),
			MemoryBound: rt.MB,
		}
	}
	return out
}

// RecordConfidence extracts the confidence score from one sweep-journal
// record payload (the same wire form journalAppend writes and the shard
// protocol's VariantResult carries). ok is false for records written
// before confidence tracking existed or for payloads that are not sweep
// records — callers weighting surrogate samples then fall back to full
// weight. Exported for the shard round planner, which trains the
// surrogate from merged worker results without an engine.
func RecordConfidence(payload []byte) (float64, bool) {
	var rec sweepRecord
	if json.Unmarshal(payload, &rec) != nil || rec.Conf == nil {
		return 0, false
	}
	return math.Float64frombits(*rec.Conf), true
}

// UseJournal opens (creating or recovering) the sweep journal at path and
// attaches it to the engine: a fresh journal is bound to this engine's
// layout fingerprint; a recovered one must match it (journal.ErrMetaMismatch
// otherwise — the workload, profile, or translation changed since the
// journal was written). Variants already recorded will be replayed instead
// of recomputed by the next Stream or Sweep. The returned journal is owned
// by the caller (Close it after the sweep); attach before starting a
// sweep, never concurrently with one.
func (e *Engine) UseJournal(path string) (*journal.Journal, error) {
	j, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	if err := e.bindJournal(j); err != nil {
		j.Close()
		return nil, err
	}
	return j, nil
}

// bindJournal validates the journal against the layout and decodes its
// records into the replay map.
func (e *Engine) bindJournal(j *journal.Journal) error {
	if err := j.SetMeta(map[string]string{metaLayoutKey: e.layout.Fingerprint()}); err != nil {
		return fmt.Errorf("explore: journal not resumable for this workload: %w", err)
	}
	replay := make(map[string]replayEntry)
	for key, payload := range j.Replay() {
		var rec sweepRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("explore: journal record %s: %w", key, err)
		}
		if len(rec.Comp) != e.layout.NumComp() || len(rec.Comm) != e.layout.NumComm() {
			return fmt.Errorf("explore: journal record %s: %d comp / %d comm blocks, layout has %d / %d",
				key, len(rec.Comp), len(rec.Comm), e.layout.NumComp(), e.layout.NumComm())
		}
		entry := replayEntry{comp: decodeTimes(rec.Comp), comm: decodeTimes(rec.Comm)}
		if rec.Conf != nil {
			c := math.Float64frombits(*rec.Conf)
			entry.conf = &c
		}
		replay[key] = entry
	}
	e.jnl = j
	e.replay = replay
	return nil
}

// Replayable returns how many journaled variants the engine can replay.
func (e *Engine) Replayable() int { return len(e.replay) }

// replayEntry looks up the variant in the attached journal's records.
func (e *Engine) replayEntry(m *hw.Machine) (replayEntry, bool) {
	if len(e.replay) == 0 {
		return replayEntry{}, false
	}
	entry, ok := e.replay[m.Fingerprint()]
	return entry, ok
}

// journalAppend durably records one freshly completed variant. A write
// failure does not fail the variant — the analysis is already computed —
// but it disables further journaling and surfaces once from the sweep's
// wait/Sweep error so the operator knows resume coverage is partial.
func (e *Engine) journalAppend(m *hw.Machine, comp, comm []hotspot.BlockTimes, conf float64) {
	if e.jnl == nil {
		return
	}
	e.mu.Lock()
	broken := e.jnlErr != nil
	e.mu.Unlock()
	if broken {
		return
	}
	cbits := math.Float64bits(conf)
	payload, err := json.Marshal(sweepRecord{Machine: m.Name, Comp: encodeTimes(comp), Comm: encodeTimes(comm), Conf: &cbits})
	if err == nil {
		err = e.jnl.Append(m.Fingerprint(), payload)
	}
	if err != nil {
		e.mu.Lock()
		if e.jnlErr == nil {
			e.jnlErr = fmt.Errorf("explore: %w: journaling disabled after write failure (sweep continues, resume coverage partial): %w",
				ErrJournalDegraded, err)
		}
		e.mu.Unlock()
	}
}

// journalError returns the sticky journal write failure, if any.
func (e *Engine) journalError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.jnlErr
}
