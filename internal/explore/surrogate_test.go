package explore_test

import (
	"math"
	"testing"

	"skope/internal/explore"
)

// TestSurrogateRecoversQuadratic: the model family is linear + quadratic
// self-terms, so a function drawn from that family must be recovered to
// near machine precision (R² ≈ 1, tiny prediction error) from a handful
// of samples.
func TestSurrogateRecoversQuadratic(t *testing.T) {
	f := func(x, y float64) float64 { return 3 + 2*x - 0.5*y + 0.25*x*x }
	s := explore.NewSurrogate(2)
	for _, p := range [][2]float64{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {0, 1}, {1, 2}, {2, 3}, {4, 2}, {3, 4}, {5, 5},
	} {
		if err := s.Observe([]float64{p[0], p[1]}, f(p[0], p[1]), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Fit()
	if r2 := s.R2(); r2 < 0.999999 {
		t.Fatalf("R² = %v, want ≈1 for an in-family function", r2)
	}
	for _, p := range [][2]float64{{1.5, 1.5}, {6, 1}, {0, 7}} {
		got, want := s.Predict([]float64{p[0], p[1]}), f(p[0], p[1])
		if math.Abs(got-want) > 1e-4*math.Abs(want)+1e-6 {
			t.Errorf("Predict(%v) = %v, want %v", p, got, want)
		}
	}
}

// TestSurrogateRanksMonotone: on an out-of-family but monotone objective
// (reciprocal, like time vs frequency) the fit must still order the
// candidates correctly — ranking, not regression accuracy, is the
// surrogate's actual job.
func TestSurrogateRanksMonotone(t *testing.T) {
	s := explore.NewSurrogate(1)
	for _, x := range []float64{1, 1.25, 1.5, 2, 2.5, 3} {
		if err := s.Observe([]float64{x}, 10/x, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Fit()
	prev := math.Inf(1)
	for _, x := range []float64{1.1, 1.6, 2.2, 2.8} {
		p := s.Predict([]float64{x})
		if p >= prev {
			t.Fatalf("Predict not decreasing in x: f(%v) = %v, previous %v", x, p, prev)
		}
		prev = p
	}
}

// TestSurrogateDegenerate covers the inputs the acquisition loop can
// legitimately produce: no samples, one sample, a constant feature column
// (single-valued axis), zero axes (one-point grid), and identical
// objectives. None may panic, produce NaN, or divide by zero.
func TestSurrogateDegenerate(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := explore.NewSurrogate(3)
		s.Fit()
		if p := s.Predict([]float64{1, 2, 3}); p != 0 {
			t.Errorf("empty surrogate predicts %v, want 0", p)
		}
		if s.YStd() != 0 {
			t.Errorf("empty YStd = %v", s.YStd())
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		s := explore.NewSurrogate(2)
		if err := s.Observe([]float64{4, 5}, 7.5, 1); err != nil {
			t.Fatal(err)
		}
		s.Fit()
		if p := s.Predict([]float64{9, 9}); p != 7.5 {
			t.Errorf("single-sample surrogate predicts %v, want the sample's 7.5", p)
		}
		if r2 := s.R2(); r2 != 1 {
			t.Errorf("single-sample R² = %v, want 1", r2)
		}
	})
	t.Run("constant-column", func(t *testing.T) {
		s := explore.NewSurrogate(2)
		for i, y := range []float64{3, 5, 4, 6} {
			// Axis 0 never moves; axis 1 does.
			if err := s.Observe([]float64{2, float64(i)}, y, 1); err != nil {
				t.Fatal(err)
			}
		}
		s.Fit()
		p := s.Predict([]float64{2, 1.5})
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("constant column produced %v", p)
		}
	})
	t.Run("zero-dims", func(t *testing.T) {
		s := explore.NewSurrogate(0)
		if err := s.Observe(nil, 2, 1); err != nil {
			t.Fatal(err)
		}
		s.Fit()
		if p := s.Predict(nil); p != 2 {
			t.Errorf("zero-dim surrogate predicts %v, want 2", p)
		}
	})
	t.Run("identical-objectives", func(t *testing.T) {
		s := explore.NewSurrogate(1)
		for i := 0; i < 5; i++ {
			if err := s.Observe([]float64{float64(i)}, 42, 1); err != nil {
				t.Fatal(err)
			}
		}
		s.Fit()
		if s.YStd() != 0 {
			t.Errorf("constant objective YStd = %v", s.YStd())
		}
		p := s.Predict([]float64{2.5})
		if math.IsNaN(p) || math.Abs(p-42) > 1e-6 {
			t.Errorf("constant objective predicts %v, want ≈42", p)
		}
	})
}

// TestSurrogateRejectsNonFinite: non-finite objectives must be refused
// (they would poison every later fit); bad weights are clamped, not
// refused, because even a zero-confidence sample carries ranking signal.
func TestSurrogateRejectsNonFinite(t *testing.T) {
	s := explore.NewSurrogate(1)
	if err := s.Observe([]float64{1}, math.NaN(), 1); err == nil {
		t.Error("NaN objective accepted")
	}
	if err := s.Observe([]float64{1}, math.Inf(1), 1); err == nil {
		t.Error("+Inf objective accepted")
	}
	if err := s.Observe([]float64{1, 2}, 1, 1); err == nil {
		t.Error("wrong-arity sample accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("rejected samples were retained: Len = %d", s.Len())
	}
	for i, w := range []float64{0, -3, math.NaN()} {
		if err := s.Observe([]float64{float64(i)}, float64(i), w); err != nil {
			t.Errorf("weight %v rejected: %v", w, err)
		}
	}
	s.Fit()
	if p := s.Predict([]float64{1}); math.IsNaN(p) {
		t.Error("clamped weights produced NaN prediction")
	}
}

// TestSurrogateDeterministic: identical observation sequences produce
// bit-identical predictions — the property the byte-identical round-trace
// guarantee of a fixed -adaptive-seed rests on.
func TestSurrogateDeterministic(t *testing.T) {
	build := func() *explore.Surrogate {
		s := explore.NewSurrogate(3)
		for i := 0; i < 40; i++ {
			x := []float64{float64(i % 5), float64((i / 5) % 4), float64(i % 3)}
			y := 1/(1+x[0]) + 0.3*x[1]*x[1] - 0.1*x[2]
			w := 0.5 + float64(i%2)/2
			if err := s.Observe(x, y, w); err != nil {
				t.Fatal(err)
			}
		}
		s.Fit()
		return s
	}
	a, b := build(), build()
	if a.R2() != b.R2() {
		t.Fatalf("R² differs across identical fits: %v != %v",
			math.Float64bits(a.R2()), math.Float64bits(b.R2()))
	}
	for i := 0; i < 60; i++ {
		x := []float64{float64(i) / 7, float64(i) / 11, float64(i) / 13}
		pa, pb := a.Predict(x), b.Predict(x)
		if math.Float64bits(pa) != math.Float64bits(pb) {
			t.Fatalf("Predict(%v) differs across identical fits: %v != %v", x, pa, pb)
		}
	}
}
