package explore

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"skope/internal/hw"
)

// param is a named, settable machine parameter — the vocabulary Grid axes
// (and the cmd/skope -sweep flag) are written in.
type param struct {
	name string
	desc string
	set  func(*hw.Machine, float64)
}

// params is the sweepable-parameter registry. Integer-valued machine
// fields are rounded to the nearest integer; hw.Machine.Validate still
// guards every generated variant.
var params = []param{
	{"freq-ghz", "core clock (GHz)", func(m *hw.Machine, v float64) { m.FreqGHz = v }},
	{"issue-width", "instructions issued per cycle", func(m *hw.Machine, v float64) { m.IssueWidth = round(v) }},
	{"fp-per-cycle", "scalar FP ops per cycle", func(m *hw.Machine, v float64) { m.FPOpsPerCycle = v }},
	{"int-per-cycle", "scalar fixed-point ops per cycle", func(m *hw.Machine, v float64) { m.IntOpsPerCycle = v }},
	{"vector-width", "SIMD width in 64-bit lanes", func(m *hw.Machine, v float64) { m.VectorWidth = round(v) }},
	{"div-latency", "FP division latency (cycles)", func(m *hw.Machine, v float64) { m.DivLatencyCyc = round(v) }},
	{"l1-size-kb", "L1 data cache size (KB)", func(m *hw.Machine, v float64) { m.L1SizeB = round(v) << 10 }},
	{"l1-latency", "L1 hit latency (cycles)", func(m *hw.Machine, v float64) { m.L1LatencyCyc = round(v) }},
	{"llc-size-mb", "last-level cache size (MB)", func(m *hw.Machine, v float64) { m.LLCSizeB = round(v) << 20 }},
	{"llc-latency", "LLC hit latency (cycles)", func(m *hw.Machine, v float64) { m.LLCLatencyCyc = round(v) }},
	{"mem-latency", "DRAM access latency (cycles)", func(m *hw.Machine, v float64) { m.MemLatencyCyc = round(v) }},
	{"mem-bandwidth", "peak DRAM bandwidth (GB/s)", func(m *hw.Machine, v float64) { m.MemBandwidthGBs = v }},
	{"mem-concurrency", "overlapping outstanding memory accesses", func(m *hw.Machine, v float64) { m.MemConcurrency = v }},
	{"hit-l1", "assumed L1 hit ratio", func(m *hw.Machine, v float64) { m.HitL1 = v }},
	{"hit-llc", "assumed LLC hit ratio", func(m *hw.Machine, v float64) { m.HitLLC = v }},
	{"net-latency-us", "interconnect message latency (us)", func(m *hw.Machine, v float64) { m.NetLatencyUs = v }},
	{"net-bandwidth", "interconnect bandwidth (GB/s)", func(m *hw.Machine, v float64) { m.NetBandwidthGBs = v }},
}

func round(v float64) int { return int(math.Round(v)) }

func paramByName(name string) (param, bool) {
	for _, p := range params {
		if p.name == name {
			return p, true
		}
	}
	return param{}, false
}

// ParamNames lists the sweepable parameter names, sorted.
func ParamNames() []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = p.name
	}
	sort.Strings(out)
	return out
}

// ParamHelp renders one "name — description" line per sweepable parameter,
// in registry (machine-struct) order, for CLI usage text.
func ParamHelp() []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = fmt.Sprintf("%-16s %s", p.name, p.desc)
	}
	return out
}

// Axis is one dimension of a design-space grid: a sweepable parameter and
// the values it takes.
type Axis struct {
	Param  string
	Values []float64
}

// ParseAxis parses a "param=v1,v2,v3" axis specification (the cmd/skope
// -sweep flag syntax).
func ParseAxis(spec string) (Axis, error) {
	name, list, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || strings.TrimSpace(list) == "" {
		return Axis{}, fmt.Errorf("explore: bad axis %q (want param=v1,v2,...)", spec)
	}
	if _, known := paramByName(name); !known {
		return Axis{}, fmt.Errorf("explore: unknown parameter %q (known: %s)", name, strings.Join(ParamNames(), ", "))
	}
	ax := Axis{Param: name}
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Axis{}, fmt.Errorf("explore: axis %s: bad value %q", name, f)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// Grid generates machine variants as the cartesian product of parameter
// axes applied to a base machine. The zero-axis grid has exactly one
// variant: the base itself.
type Grid struct {
	Base *hw.Machine
	Axes []Axis
}

// Size returns the number of variants the grid generates.
func (g *Grid) Size() int {
	n := 1
	for _, ax := range g.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Variants materializes the grid in odometer order (last axis fastest).
// Each variant is an independent copy of the base named
// "base[p1=v1 p2=v2 ...]"; invalid parameter combinations are not filtered
// here — the engine validates each variant as it evaluates it.
func (g *Grid) Variants() ([]*hw.Machine, error) {
	if g.Base == nil {
		return nil, fmt.Errorf("explore: grid has no base machine")
	}
	setters := make([]param, len(g.Axes))
	for i, ax := range g.Axes {
		p, ok := paramByName(ax.Param)
		if !ok {
			return nil, fmt.Errorf("explore: unknown parameter %q (known: %s)", ax.Param, strings.Join(ParamNames(), ", "))
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("explore: axis %s has no values", ax.Param)
		}
		setters[i] = p
	}
	out := make([]*hw.Machine, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		m := new(hw.Machine)
		*m = *g.Base
		var tags []string
		for i, ax := range g.Axes {
			v := ax.Values[idx[i]]
			setters[i].set(m, v)
			tags = append(tags, fmt.Sprintf("%s=%g", ax.Param, v))
		}
		if len(tags) > 0 {
			m.Name = fmt.Sprintf("%s[%s]", g.Base.Name, strings.Join(tags, " "))
		}
		out = append(out, m)
		// Advance the odometer; done when it wraps past the first axis.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}
