package explore

import (
	"errors"
	"fmt"
	"strings"

	"skope/internal/hw"
)

// ErrLowConfidence marks a variant whose assembled analysis scored below
// the engine's MinConfidence floor: the projection completed, but too much
// of it rests on fallback priors, recovered parses, or non-finite
// arithmetic to rank alongside trustworthy variants. The variant comes
// back as a *VariantError wrapping this sentinel, never as an analysis.
var ErrLowConfidence = errors.New("analysis confidence below floor")

// VariantError attributes one failed variant of a sweep: which input index,
// which machine, and why. The cause stays on the %w chain, so
// errors.Is(err, guard.ErrPanic) and errors.Is(err, guard.ErrLimit) see
// through it.
type VariantError struct {
	// Index is the variant's position in the input slice.
	Index int
	// Machine is the variant that failed.
	Machine *hw.Machine
	// MachineName and Fingerprint identify the variant independently of
	// the (possibly re-generated) input slice: the name for humans, the
	// fingerprint as the durable identity a journaled re-run keys on —
	// together they make a degraded-sweep report actionable without the
	// original grid in hand.
	MachineName string
	Fingerprint string
	// Attempts is how many evaluation attempts the variant consumed
	// (1 without a retry policy; 0 for failures that never evaluated,
	// such as journal replay of a corrupt record).
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *VariantError) Error() string {
	name := e.MachineName
	if name == "" && e.Machine != nil {
		name = e.Machine.Name
	}
	msg := fmt.Sprintf("explore: variant %d (%s", e.Index, name)
	if e.Fingerprint != "" {
		msg += " fp=" + e.Fingerprint
	}
	if e.Attempts > 1 {
		msg += fmt.Sprintf(", %d attempts", e.Attempts)
	}
	return fmt.Sprintf("%s): %v", msg, e.Err)
}

// Unwrap exposes the cause.
func (e *VariantError) Unwrap() error { return e.Err }

// SweepError aggregates every variant failure of one sweep. The sweep
// itself completed: every healthy variant produced its analysis; only the
// listed variants are missing. Unwrap exposes each *VariantError, so
// errors.Is/As reach the individual causes.
type SweepError struct {
	// Variants lists the failures in input-index order.
	Variants []*VariantError
}

// Error implements error, naming every failed variant.
func (e *SweepError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explore: %d of the sweep's variants failed:", len(e.Variants))
	for _, v := range e.Variants {
		sb.WriteString("\n\t")
		sb.WriteString(v.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual variant errors.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Variants))
	for i, v := range e.Variants {
		errs[i] = v
	}
	return errs
}
