package explore

import (
	"fmt"
	"strings"

	"skope/internal/hw"
)

// VariantError attributes one failed variant of a sweep: which input index,
// which machine, and why. The cause stays on the %w chain, so
// errors.Is(err, guard.ErrPanic) and errors.Is(err, guard.ErrLimit) see
// through it.
type VariantError struct {
	// Index is the variant's position in the input slice.
	Index int
	// Machine is the variant that failed.
	Machine *hw.Machine
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *VariantError) Error() string {
	return fmt.Sprintf("explore: variant %d (%s): %v", e.Index, e.Machine.Name, e.Err)
}

// Unwrap exposes the cause.
func (e *VariantError) Unwrap() error { return e.Err }

// SweepError aggregates every variant failure of one sweep. The sweep
// itself completed: every healthy variant produced its analysis; only the
// listed variants are missing. Unwrap exposes each *VariantError, so
// errors.Is/As reach the individual causes.
type SweepError struct {
	// Variants lists the failures in input-index order.
	Variants []*VariantError
}

// Error implements error, naming every failed variant.
func (e *SweepError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explore: %d of the sweep's variants failed:", len(e.Variants))
	for _, v := range e.Variants {
		sb.WriteString("\n\t")
		sb.WriteString(v.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual variant errors.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Variants))
	for i, v := range e.Variants {
		errs[i] = v
	}
	return errs
}
