package explore_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/workloads"
)

// prepared caches pipeline runs across tests (preparation includes a full
// profiling execution).
var (
	prepMu   sync.Mutex
	runCache = map[string]*pipeline.Run{}
)

func prepared(t testing.TB, name string) *pipeline.Run {
	t.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if r, ok := runCache[name]; ok {
		return r
	}
	r, err := pipeline.PrepareByName(context.Background(), name, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("prepare %s: %v", name, err)
	}
	runCache[name] = r
	return r
}

func TestGridVariants(t *testing.T) {
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "mem-bandwidth", Values: []float64{16, 32, 64}},
		{Param: "net-latency-us", Values: []float64{1, 2}},
	}}
	if g.Size() != 6 {
		t.Fatalf("Size = %d, want 6", g.Size())
	}
	vs, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 6 {
		t.Fatalf("got %d variants", len(vs))
	}
	// Odometer order: last axis fastest.
	if vs[0].MemBandwidthGBs != 16 || vs[0].NetLatencyUs != 1 {
		t.Errorf("variant 0 = bw %g lat %g", vs[0].MemBandwidthGBs, vs[0].NetLatencyUs)
	}
	if vs[1].MemBandwidthGBs != 16 || vs[1].NetLatencyUs != 2 {
		t.Errorf("variant 1 = bw %g lat %g", vs[1].MemBandwidthGBs, vs[1].NetLatencyUs)
	}
	if vs[2].MemBandwidthGBs != 32 || vs[2].NetLatencyUs != 1 {
		t.Errorf("variant 2 = bw %g lat %g", vs[2].MemBandwidthGBs, vs[2].NetLatencyUs)
	}
	want := "BG/Q[mem-bandwidth=16 net-latency-us=2]"
	if vs[1].Name != want {
		t.Errorf("variant 1 name = %q, want %q", vs[1].Name, want)
	}
	// The base machine must not be mutated.
	if base := hw.BGQ(); vs[5].MemBandwidthGBs == base.MemBandwidthGBs && base.MemBandwidthGBs == 64 {
		t.Error("base machine mutated by grid")
	}
	for _, v := range vs {
		if err := v.Validate(); err != nil {
			t.Errorf("variant %s invalid: %v", v.Name, err)
		}
	}
}

func TestGridZeroAxes(t *testing.T) {
	g := explore.Grid{Base: hw.XeonE5()}
	vs, err := g.Variants()
	if err != nil || len(vs) != 1 || g.Size() != 1 {
		t.Fatalf("zero-axis grid: %d variants (size %d), err %v", len(vs), g.Size(), err)
	}
	if vs[0].Name != hw.XeonE5().Name {
		t.Errorf("zero-axis variant renamed to %q", vs[0].Name)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := (&explore.Grid{}).Variants(); err == nil {
		t.Error("nil base accepted")
	}
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{{Param: "warp-factor", Values: []float64{9}}}}
	if _, err := g.Variants(); err == nil {
		t.Error("unknown parameter accepted")
	}
	g = explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{{Param: "mem-bandwidth"}}}
	if _, err := g.Variants(); err == nil {
		t.Error("empty axis accepted")
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := explore.ParseAxis("mem-bandwidth=16, 32,64")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Param != "mem-bandwidth" || len(ax.Values) != 3 || ax.Values[1] != 32 {
		t.Errorf("parsed %+v", ax)
	}
	for _, bad := range []string{"", "mem-bandwidth", "mem-bandwidth=", "=1,2", "nope=1", "mem-bandwidth=1,x"} {
		if _, err := explore.ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

func TestParamNamesCoverHelp(t *testing.T) {
	names := explore.ParamNames()
	help := explore.ParamHelp()
	if len(names) == 0 || len(names) != len(help) {
		t.Fatalf("%d names, %d help lines", len(names), len(help))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate parameter %q", n)
		}
		seen[n] = true
	}
}

// TestSweepMatchesAnalyze is the memoization-correctness test: cached
// sweep results must be bit-identical to uncached hotspot.Analyze results,
// across all five workloads, including variants engineered to hit both
// cache halves.
func TestSweepMatchesAnalyze(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
				{Param: "mem-bandwidth", Values: []float64{14, 28}},
				{Param: "net-latency-us", Values: []float64{1, 2.5, 5}},
			}}
			variants, err := g.Variants()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				t.Fatal(err)
			}
			// Two passes: the second is served entirely from cache and
			// must agree with the first (and with uncached analysis).
			for pass := 0; pass < 2; pass++ {
				analyses, err := eng.Sweep(context.Background(), variants)
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range analyses {
					fresh, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(variants[i]), run.Libs)
					if err != nil {
						t.Fatal(err)
					}
					if a.TotalTime != fresh.TotalTime {
						t.Fatalf("pass %d variant %d: TotalTime %v != fresh %v",
							pass, i, a.TotalTime, fresh.TotalTime)
					}
					if len(a.Blocks) != len(fresh.Blocks) {
						t.Fatalf("pass %d variant %d: %d blocks != fresh %d",
							pass, i, len(a.Blocks), len(fresh.Blocks))
					}
					for j, b := range a.Blocks {
						fb := fresh.Blocks[j]
						if b.BlockID != fb.BlockID {
							t.Fatalf("variant %d rank %d: %s != %s", i, j, b.BlockID, fb.BlockID)
						}
						if b.Tc != fb.Tc || b.Tm != fb.Tm || b.To != fb.To || b.T != fb.T {
							t.Fatalf("variant %d block %s: times (%v %v %v %v) != fresh (%v %v %v %v)",
								i, b.BlockID, b.Tc, b.Tm, b.To, b.T, fb.Tc, fb.Tm, fb.To, fb.T)
						}
						if b.MemoryBound != fb.MemoryBound {
							t.Fatalf("variant %d block %s: MemoryBound %v != %v",
								i, b.BlockID, b.MemoryBound, fb.MemoryBound)
						}
					}
				}
			}
			stats := eng.CacheStats()
			if stats.Hits == 0 {
				t.Error("memo cache never hit across two identical sweeps")
			}
		})
	}
}

func TestSweepCacheReuseAcrossCommOnlyChanges(t *testing.T) {
	run := prepared(t, "sord")
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "net-latency-us", Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
	}}
	variants, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	// One worker keeps the hit/miss accounting deterministic (concurrent
	// workers can race to characterize the same signature).
	eng, err := explore.New(run.BET, run.Libs, explore.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}
	// 10 variants sharing one compute signature: 1 comp miss + 10 comm
	// misses, 9 comp hits.
	stats := eng.CacheStats()
	if stats.Misses != 11 || stats.Hits != 9 {
		t.Errorf("stats = %+v, want 9 hits / 11 misses", stats)
	}
	if r := stats.HitRate(); r < 0.44 || r > 0.46 {
		t.Errorf("hit rate = %v", r)
	}
}

// TestSweepIsolatesFailures: a sweep containing one invalid machine (zero
// memory bandwidth) and one panic-injected variant must still complete,
// attribute both failures to their variants, and return analyses for every
// healthy variant that match an uncached hotspot.Analyze bit for bit.
func TestSweepIsolatesFailures(t *testing.T) {
	run := prepared(t, "srad")
	var variants []*hw.Machine
	for i := 0; i < 20; i++ {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("v%d", i)
		m.NetLatencyUs = float64(i + 1)
		variants = append(variants, m)
	}
	variants[7].MemBandwidthGBs = 0 // fails hw.Machine.Validate
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if detail == "v13" {
			panic("injected fault")
		}
	})
	t.Cleanup(disarm)

	eng, err := explore.New(run.BET, run.Libs, explore.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	analyses, err := eng.Sweep(context.Background(), variants)
	var sweepErr *explore.SweepError
	if !errors.As(err, &sweepErr) {
		t.Fatalf("Sweep error = %v, want *SweepError", err)
	}
	if len(sweepErr.Variants) != 2 {
		t.Fatalf("failures = %d, want 2: %v", len(sweepErr.Variants), sweepErr)
	}
	if v := sweepErr.Variants[0]; v.Index != 7 || !strings.Contains(v.Error(), "v7") ||
		!strings.Contains(v.Error(), "bandwidth") {
		t.Errorf("first failure not attributed to the invalid machine: %v", v)
	}
	if v := sweepErr.Variants[1]; v.Index != 13 || !strings.Contains(v.Error(), "v13") ||
		!errors.Is(v, guard.ErrPanic) {
		t.Errorf("second failure not a recovered panic on v13: %v", v)
	}
	if len(analyses) != len(variants) {
		t.Fatalf("got %d analysis slots, want %d", len(analyses), len(variants))
	}
	for i, a := range analyses {
		if i == 7 || i == 13 {
			if a != nil {
				t.Errorf("variant %d: failed variant has a non-nil analysis", i)
			}
			continue
		}
		if a == nil {
			t.Fatalf("variant %d: healthy variant missing from degraded sweep", i)
		}
		fresh, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(variants[i]), run.Libs)
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalTime != fresh.TotalTime {
			t.Errorf("variant %d: TotalTime %v != fresh %v", i, a.TotalTime, fresh.TotalTime)
		}
	}
	waitForGoroutines(t, before)
}

// TestSweepCancellation: a canceled sweep must return promptly, report the
// context's error through the %w chain, and leak no goroutines.
func TestSweepCancellation(t *testing.T) {
	run := prepared(t, "sord")
	var variants []*hw.Machine
	for i := 0; i < 2000; i++ {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("v%d", i)
		m.NetLatencyUs = float64(i + 1)
		variants = append(variants, m)
	}
	eng, err := explore.New(run.BET, run.Libs, explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	results, wait := eng.Stream(ctx, variants)
	// Take a few results, then cancel mid-sweep.
	for i := 0; i < 3; i++ {
		if _, ok := <-results; !ok {
			t.Fatal("stream closed early")
		}
	}
	cancel()
	start := time.Now()
	for range results {
		// drain whatever was in flight
	}
	err = wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled sweep took %v to stop", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("wait() = %v, want wrapped context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

func TestSweepPreCanceledContext(t *testing.T) {
	run := prepared(t, "sord")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if _, err := eng.Sweep(ctx, []*hw.Machine{hw.BGQ(), hw.XeonE5()}); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep = %v, want wrapped context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestBoundedPool1000Variants drives a 1000-variant sord sweep through a
// small pool and asserts the pool stays bounded: the peak goroutine count
// during the sweep must not scale with the variant count.
func TestBoundedPool1000Variants(t *testing.T) {
	run := prepared(t, "sord")
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "net-latency-us", Values: seq(1, 100)},
		{Param: "net-bandwidth", Values: seq(1, 10)},
	}}
	variants, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 1000 {
		t.Fatalf("grid produced %d variants", len(variants))
	}
	before := runtime.NumGoroutine()
	peak := 0
	eng, err := explore.New(run.BET, run.Libs,
		explore.Workers(4),
		explore.OnProgress(func(p explore.Progress) {
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	analyses, err := eng.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range analyses {
		if a == nil || a.TotalTime <= 0 {
			t.Fatalf("variant %d missing", i)
		}
	}
	// 4 workers + feeder + closer + test overhead; anything near 1000
	// means per-variant goroutines came back.
	if peak > before+16 {
		t.Errorf("goroutine peak %d (baseline %d): pool not bounded", peak, before)
	}
	if stats := eng.CacheStats(); stats.HitRate() < 0.49 {
		t.Errorf("hit rate %.2f, want ~0.50 (comp cached, comm distinct)", stats.HitRate())
	}
	waitForGoroutines(t, before)
}

func TestBestAndPareto(t *testing.T) {
	mk := func(name string, bw float64) *hw.Machine {
		m := hw.BGQ()
		m.Name = name
		m.MemBandwidthGBs = bw
		return m
	}
	variants := []*hw.Machine{mk("a", 10), mk("b", 20), mk("c", 30), mk("d", 40)}
	analyses := []*hotspot.Analysis{
		{TotalTime: 4}, // a: cheap, slow
		{TotalTime: 2}, // b: mid cost, fast — frontier
		{TotalTime: 3}, // c: more cost, slower than b — dominated
		{TotalTime: 1}, // d: most cost, fastest — frontier
	}
	if got := explore.Best(analyses); got != 3 {
		t.Errorf("Best = %d, want 3", got)
	}
	cost := func(m *hw.Machine) float64 { return m.MemBandwidthGBs }
	front := explore.Pareto(variants, analyses, cost)
	var names []string
	for _, p := range front {
		names = append(names, p.Machine.Name)
	}
	if got := strings.Join(names, ","); got != "a,b,d" {
		t.Errorf("frontier = %s, want a,b,d", got)
	}
	if explore.Best(nil) != -1 {
		t.Error("Best(nil) != -1")
	}
	if len(explore.Pareto(nil, nil, cost)) != 0 {
		t.Error("Pareto(nil) not empty")
	}
}

func seq(start float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)
	}
	return out
}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline (small slack for runtime/test goroutines).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}
