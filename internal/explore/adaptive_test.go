package explore_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/store"
	"skope/internal/workloads"
)

var updateAdaptiveGolden = flag.Bool("update", false, "rewrite the adaptive parity golden file")

// parityAxes is the shared ≥500-variant parity grid: four axes that each
// bite on every workload's projected time (clock on the compute term;
// L1 latency, DRAM latency, and hit ratio on the memory term's latency
// path), 6·5·5·4 = 600 variants. Axes whose effect plateaus at the
// optimum corner (mem-bandwidth on latency-bound blocks, net latency on
// comm-free test-scale workloads) are deliberately absent, and the
// parity test asserts the exhaustive optimum is unique on this grid for
// every workload, so a tie can never make the fingerprint-equality
// assertion ambiguous.
func parityAxes() []explore.Axis {
	return []explore.Axis{
		{Param: "freq-ghz", Values: []float64{1.0, 1.2, 1.4, 1.6, 2.0, 2.4}},
		{Param: "mem-latency", Values: []float64{60, 80, 100, 130, 170}},
		{Param: "hit-l1", Values: []float64{0.88, 0.91, 0.94, 0.97, 0.995}},
		{Param: "l1-latency", Values: []float64{3, 4, 6, 9}},
	}
}

func parityVariants(t testing.TB) []*hw.Machine {
	t.Helper()
	g := explore.Grid{Base: hw.BGQ(), Axes: parityAxes()}
	variants, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return variants
}

// TestAdaptiveParity is the acceptance test of the adaptive explorer: on
// every paper workload, the surrogate-guided search must find the exact
// exhaustive optimum — same variant fingerprint, float-exact objective —
// while spending at most 5% of the exhaustive evaluation count. The
// per-workload eval counts are pinned in testdata/adaptive_evals.golden
// so a regression in sample efficiency fails loudly even while the 5%
// ceiling still holds (refresh with -update after intentional changes).
func TestAdaptiveParity(t *testing.T) {
	variants := parityVariants(t)
	budget := len(variants) * 5 / 100

	evalCounts := map[string]int{}
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)

			exact, err := explore.New(run.BET, run.Libs)
			if err != nil {
				t.Fatal(err)
			}
			analyses, err := exact.Sweep(context.Background(), variants)
			if err != nil {
				t.Fatal(err)
			}
			best := explore.Best(analyses)
			if best < 0 {
				t.Fatal("exhaustive sweep produced no best variant")
			}
			for i, a := range analyses {
				if i != best && a.TotalTime == analyses[best].TotalTime {
					t.Fatalf("parity grid is ambiguous for %s: variants %d and %d tie at %v — pick axes with strict effect",
						name, best, i, a.TotalTime)
				}
			}

			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Adaptive(context.Background(), variants, parityAxes(),
				explore.AdaptiveOptions{Seed: 42, MaxEvals: budget})
			if err != nil {
				t.Fatal(err)
			}
			if res.BestIndex != best {
				t.Errorf("adaptive optimum is variant %d (%s), exhaustive says %d (%s)",
					res.BestIndex, variants[res.BestIndex].Fingerprint(), best, variants[best].Fingerprint())
			}
			if res.Best.Fingerprint() != variants[best].Fingerprint() {
				t.Errorf("incumbent fingerprint %s != exhaustive %s", res.Best.Fingerprint(), variants[best].Fingerprint())
			}
			if got, want := res.BestAnalysis.TotalTime, analyses[best].TotalTime; math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("incumbent objective %v not float-exact against exhaustive %v", got, want)
			}
			if res.Evals > budget {
				t.Errorf("adaptive spent %d evaluations, budget (5%% of %d) is %d", res.Evals, len(variants), budget)
			}
			if res.GridSize != len(variants) {
				t.Errorf("GridSize = %d, want %d", res.GridSize, len(variants))
			}
			evalCounts[name] = res.Evals
		})
	}
	if t.Failed() {
		return
	}

	golden := filepath.Join("testdata", "adaptive_evals.golden")
	if *updateAdaptiveGolden {
		buf, err := json.MarshalIndent(evalCounts, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	buf, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	want := map[string]int{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evalCounts, want) {
		t.Errorf("per-workload adaptive eval counts drifted:\n got %v\nwant %v\n(rerun with -update if the change is intentional)", evalCounts, want)
	}
}

// adaptiveAxes is a small grid for the behavioural tests: 4×3×3 = 36
// variants, three axes.
func adaptiveAxes() []explore.Axis {
	return []explore.Axis{
		{Param: "freq-ghz", Values: []float64{1.2, 1.6, 2.0, 2.4}},
		{Param: "mem-latency", Values: []float64{80, 110, 150}},
		{Param: "mem-bandwidth", Values: []float64{16, 28, 48}},
	}
}

func adaptiveVariants(t testing.TB) []*hw.Machine {
	t.Helper()
	g := explore.Grid{Base: hw.BGQ(), Axes: adaptiveAxes()}
	variants, err := g.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return variants
}

// TestAdaptiveDeterministicTrace: a fixed seed makes the whole run a pure
// function of the inputs — two independent engines (each with its own
// journal) must produce byte-identical round traces and byte-identical
// journal files.
func TestAdaptiveDeterministicTrace(t *testing.T) {
	run := prepared(t, "sord")
	variants := adaptiveVariants(t)

	runOnce := func(dir string) ([]byte, []byte) {
		eng, err := explore.New(run.BET, run.Libs, explore.Workers(1))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "adaptive.journal")
		jnl, err := eng.UseJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Adaptive(context.Background(), variants, adaptiveAxes(),
			explore.AdaptiveOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		jnl.Close()
		trace, err := json.Marshal(res.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return trace, raw
	}

	trace1, jnl1 := runOnce(t.TempDir())
	trace2, jnl2 := runOnce(t.TempDir())
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("round traces differ across identical seeds:\n%s\n%s", trace1, trace2)
	}
	if !bytes.Equal(jnl1, jnl2) {
		t.Error("journals differ across identical seeds")
	}

	// A different seed picks a different bootstrap sample.
	eng, err := explore.New(run.BET, run.Libs, explore.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Adaptive(context.Background(), variants, adaptiveAxes(),
		explore.AdaptiveOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	other, err := json.Marshal(res.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(trace1, other) {
		t.Error("seeds 7 and 8 produced identical traces — seed is not keying the subsample")
	}
}

// TestAdaptivePlannerInvariants drives the planner directly with a
// synthetic objective and checks the structural properties every round
// must satisfy: batches are ascending, disjoint from everything issued
// before, within the grid, and the search terminates with the incumbent
// equal to the argmin over everything it evaluated.
func TestAdaptivePlannerInvariants(t *testing.T) {
	axes := adaptiveAxes()
	variants := adaptiveVariants(t)
	p, err := explore.NewAdaptivePlanner(variants, axes, explore.AdaptiveOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.GridSize() != len(variants) {
		t.Fatalf("GridSize = %d, want %d", p.GridSize(), len(variants))
	}

	obj := func(g int) float64 {
		m := variants[g]
		return 5/m.FreqGHz + float64(m.MemLatencyCyc)/100 + 40/m.MemBandwidthGBs
	}
	issued := map[int]bool{}
	bestIdx, bestY := -1, math.Inf(1)
	for rounds := 0; ; rounds++ {
		if rounds > len(variants) {
			t.Fatal("planner did not terminate within GridSize rounds")
		}
		batch := p.NextRound()
		if batch == nil {
			break
		}
		if !sort.IntsAreSorted(batch) {
			t.Fatalf("round batch not ascending: %v", batch)
		}
		for _, g := range batch {
			if g < 0 || g >= len(variants) {
				t.Fatalf("batch index %d outside grid", g)
			}
			if issued[g] {
				t.Fatalf("index %d issued twice", g)
			}
			issued[g] = true
			y := obj(g)
			if y < bestY {
				bestIdx, bestY = g, y
			}
			p.Observe(g, y, 1)
		}
		p.EndRound()
	}
	if p.Evals() != len(issued) {
		t.Errorf("Evals = %d, issued %d", p.Evals(), len(issued))
	}
	idx, y, ok := p.Incumbent()
	if !ok || idx != bestIdx || y != bestY {
		t.Errorf("incumbent = (%d, %v, %v), want argmin over issued (%d, %v)", idx, y, ok, bestIdx, bestY)
	}
	if got, want := len(p.Traces()), 0; want == got {
		t.Error("no round traces recorded")
	}
	for i, tr := range p.Traces() {
		if tr.Round != i+1 {
			t.Errorf("trace %d has Round %d", i, tr.Round)
		}
		if tr.GridSize != len(variants) {
			t.Errorf("trace %d GridSize = %d", i, tr.GridSize)
		}
	}
}

// TestAdaptivePlannerDegenerate: the degenerate grids a user can
// legitimately construct — a one-point grid, a single-valued axis
// (constant feature column), and a grid smaller than the seed sample —
// must run to completion without crashing or dividing by zero.
func TestAdaptivePlannerDegenerate(t *testing.T) {
	base := hw.BGQ()
	cases := []struct {
		name string
		axes []explore.Axis
	}{
		{"one-point-grid", []explore.Axis{{Param: "freq-ghz", Values: []float64{1.6}}}},
		{"single-value-axis", []explore.Axis{
			{Param: "freq-ghz", Values: []float64{1.6}},
			{Param: "mem-bandwidth", Values: []float64{16, 28, 48}},
		}},
		{"grid-smaller-than-seed", []explore.Axis{
			{Param: "freq-ghz", Values: []float64{1.2, 2.4}},
			{Param: "mem-latency", Values: []float64{90, 120}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := explore.Grid{Base: base, Axes: tc.axes}
			variants, err := g.Variants()
			if err != nil {
				t.Fatal(err)
			}
			p, err := explore.NewAdaptivePlanner(variants, tc.axes, explore.AdaptiveOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			seen := 0
			for batch := p.NextRound(); batch != nil; batch = p.NextRound() {
				for _, g := range batch {
					seen++
					p.Observe(g, 1+float64(g)/10, 1)
				}
				tr := p.EndRound()
				if math.IsNaN(tr.R2) || math.IsInf(tr.R2, 0) {
					t.Fatalf("round %d R² = %v", tr.Round, tr.R2)
				}
			}
			if seen != len(variants) && !p.Converged() {
				t.Errorf("planner stopped after %d of %d evals without converging", seen, len(variants))
			}
			if idx, _, ok := p.Incumbent(); !ok || idx < 0 || idx >= len(variants) {
				t.Errorf("incumbent (%d, ok=%v) invalid on %d-point grid", idx, ok, len(variants))
			}
		})
	}

	// A variants slice that is not the axes' grid is refused outright.
	if _, err := explore.NewAdaptivePlanner(adaptiveVariants(t)[:5], adaptiveAxes(), explore.AdaptiveOptions{}); err == nil {
		t.Error("mismatched variants/axes accepted")
	}
}

// TestAdaptiveBudget: MaxEvals is a hard ceiling — the search stops at
// exactly the budget, reports Converged=false, and still returns the
// incumbent over what it did evaluate.
func TestAdaptiveBudget(t *testing.T) {
	run := prepared(t, "sord")
	variants := adaptiveVariants(t)
	eng, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Adaptive(context.Background(), variants, adaptiveAxes(),
		explore.AdaptiveOptions{Seed: 5, MaxEvals: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 6 {
		t.Errorf("Evals = %d, want exactly the budget of 6", res.Evals)
	}
	if res.Converged {
		t.Error("budget-exhausted search reported Converged")
	}
	if res.BestIndex < 0 || res.BestAnalysis == nil {
		t.Fatalf("no incumbent under budget: BestIndex=%d", res.BestIndex)
	}
	evaluated := 0
	for _, a := range res.Analyses {
		if a != nil {
			evaluated++
		}
	}
	if evaluated != 6 {
		t.Errorf("%d analyses set, want 6", evaluated)
	}
}

// TestAdaptiveConcurrentSearches runs two surrogate-guided searches
// concurrently on one shared engine with the CAS store attached — the
// -race exercise for the planner/engine split: planners are per-search,
// everything shared (memo cache, store, progress sink) must stay
// consistent under worker-pool interleaving.
func TestAdaptiveConcurrentSearches(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run := prepared(t, "srad")
	variants := adaptiveVariants(t)

	var mu sync.Mutex
	var progress []explore.Progress
	mode := store.ModeDigest(hotspot.DefaultCriteria(), false, 0)
	eng, err := explore.New(run.BET, run.Libs,
		explore.CAS(s, mode),
		explore.Workers(4),
		explore.OnProgress(func(p explore.Progress) {
			mu.Lock()
			progress = append(progress, p)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}

	const searches = 3
	results := make([]*explore.AdaptiveResult, searches)
	errs := make([]error, searches)
	var wg sync.WaitGroup
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Adaptive(context.Background(), variants, adaptiveAxes(),
				explore.AdaptiveOptions{Seed: uint64(20 + i)})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
	}
	// Different seeds may converge on different incumbents in principle,
	// but every incumbent objective must be an exact engine evaluation and
	// every search must have produced a valid trace.
	for i, res := range results {
		if res.BestIndex < 0 || res.BestAnalysis == nil {
			t.Fatalf("search %d found no incumbent", i)
		}
		if res.BestAnalysis.TotalTime <= 0 {
			t.Errorf("search %d incumbent time %v", i, res.BestAnalysis.TotalTime)
		}
		if res.Evals < len(res.Rounds) {
			t.Errorf("search %d: %d evals across %d rounds", i, res.Evals, len(res.Rounds))
		}
	}
	stats := eng.CacheStats()
	if stats.Hits+stats.Misses == 0 {
		t.Error("memo cache untouched by three concurrent searches")
	}
	st := s.Stats()
	if st.Puts == 0 {
		t.Error("no results written through to the CAS store")
	}
	// Round-boundary progress snapshots must carry the adaptive trace.
	mu.Lock()
	defer mu.Unlock()
	adaptiveSnaps := 0
	for _, p := range progress {
		if p.Adaptive != nil {
			adaptiveSnaps++
			if p.Adaptive.GridSize != len(variants) {
				t.Errorf("adaptive snapshot GridSize = %d", p.Adaptive.GridSize)
			}
		}
	}
	if adaptiveSnaps == 0 {
		t.Error("no adaptive round snapshots on the progress stream")
	}
}

// FuzzAdaptivePlannerAxes fuzzes the planner over axis-spec strings
// (the exact grammar -sweep accepts): whatever grid parses, the planner
// must terminate, never hand out an index twice, and never leave the
// grid, even when the synthetic objective drives the surrogate into
// extreme values.
func FuzzAdaptivePlannerAxes(f *testing.F) {
	f.Add("freq-ghz=1,2", uint64(1))
	f.Add("freq-ghz=1.2,1.6;mem-latency=80,100,120", uint64(7))
	f.Add("hit-l1=0.9;mem-bandwidth=16,32", uint64(0))
	f.Add("freq-ghz=1:4:8", uint64(3))
	f.Fuzz(func(t *testing.T, specs string, seed uint64) {
		var axes []explore.Axis
		size := 1
		for _, spec := range strings.Split(specs, ";") {
			ax, err := explore.ParseAxis(spec)
			if err != nil {
				t.Skip()
			}
			axes = append(axes, ax)
			size *= len(ax.Values)
			if size > 512 || len(axes) > 6 {
				t.Skip()
			}
		}
		if len(axes) == 0 {
			t.Skip()
		}
		g := explore.Grid{Base: hw.BGQ(), Axes: axes}
		variants, err := g.Variants()
		if err != nil {
			t.Skip()
		}
		p, err := explore.NewAdaptivePlanner(variants, axes, explore.AdaptiveOptions{Seed: seed})
		if err != nil {
			t.Fatalf("planner rejected a parsed grid: %v", err)
		}
		issued := map[int]bool{}
		for rounds := 0; ; rounds++ {
			if rounds > len(variants)+1 {
				t.Fatal("planner did not terminate")
			}
			batch := p.NextRound()
			if batch == nil {
				break
			}
			for _, gi := range batch {
				if gi < 0 || gi >= len(variants) {
					t.Fatalf("index %d outside grid of %d", gi, len(variants))
				}
				if issued[gi] {
					t.Fatalf("index %d issued twice", gi)
				}
				issued[gi] = true
				// An adversarial but finite objective.
				y := math.Mod(float64(gi)*1e15, 1e9) - float64(gi%3)*1e8
				p.Observe(gi, y, float64(gi%5)-2) // weights get clamped
			}
			p.EndRound()
		}
		if p.Evals() != len(issued) {
			t.Fatalf("Evals = %d, issued %d", p.Evals(), len(issued))
		}
	})
}

// TestAdaptiveCancellation: cancelling mid-search loses the result (like
// Sweep) and reports the context error.
func TestAdaptiveCancellation(t *testing.T) {
	run := prepared(t, "sord")
	variants := adaptiveVariants(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Adaptive(ctx, variants, adaptiveAxes(), explore.AdaptiveOptions{Seed: 1})
	if res != nil || err == nil {
		t.Fatalf("cancelled search returned (%v, %v)", res, err)
	}
}
