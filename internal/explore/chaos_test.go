package explore_test

// The chaos suite drives the resilience layer the way production faults
// would: transient panics, attempts that hang past their deadline, and a
// sweep killed mid-run, all injected through the guard.Arm/guard.Hit
// fault points the engine ships with. The invariants under test are the
// durability contract of the sweep journal (a resumed sweep replays every
// journaled variant with zero recomputation and yields bit-identical
// results) and the retry contract (injected transient faults succeed
// within the configured budget; deterministic ones trip the breaker
// instead of burning it).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/resilience"
)

// fastRetry is a retry policy that never really sleeps.
func fastRetry(maxAttempts int) resilience.Policy {
	return resilience.Policy{
		MaxAttempts: maxAttempts,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

// chaosVariants builds n valid, distinct BG/Q variants.
func chaosVariants(n int) []*hw.Machine {
	out := make([]*hw.Machine, n)
	for i := range out {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("v%d", i)
		m.NetLatencyUs = float64(i + 1)
		if i%3 == 0 {
			m.MemBandwidthGBs = float64(14 + i)
		}
		out[i] = m
	}
	return out
}

// assertBitIdentical fails unless both sweeps agree on every variant,
// block, and time, bit for bit.
func assertBitIdentical(t *testing.T, got, want []*hotspot.Analysis) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d analyses != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if (g == nil) != (w == nil) {
			t.Fatalf("variant %d: nil mismatch (got %v, want %v)", i, g == nil, w == nil)
		}
		if g == nil {
			continue
		}
		if g.TotalTime != w.TotalTime {
			t.Fatalf("variant %d: TotalTime %v != %v", i, g.TotalTime, w.TotalTime)
		}
		if len(g.Blocks) != len(w.Blocks) {
			t.Fatalf("variant %d: %d blocks != %d", i, len(g.Blocks), len(w.Blocks))
		}
		for j := range g.Blocks {
			gb, wb := g.Blocks[j], w.Blocks[j]
			if gb.BlockID != wb.BlockID || gb.Tc != wb.Tc || gb.Tm != wb.Tm ||
				gb.To != wb.To || gb.T != wb.T || gb.MemoryBound != wb.MemoryBound {
				t.Fatalf("variant %d rank %d: block %s (%v %v %v %v %v) != %s (%v %v %v %v %v)",
					i, j, gb.BlockID, gb.Tc, gb.Tm, gb.To, gb.T, gb.MemoryBound,
					wb.BlockID, wb.Tc, wb.Tm, wb.To, wb.T, wb.MemoryBound)
			}
		}
	}
}

// cleanSweep evaluates the variants with no faults, journal, or retries —
// the reference results chaos runs must reproduce exactly.
func cleanSweep(t *testing.T, workload string, variants []*hw.Machine) []*hotspot.Analysis {
	t.Helper()
	run := prepared(t, workload)
	eng, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosTransientPanicsRetried injects panics that clear after two
// attempts: with a 3-attempt budget the sweep must fully succeed and
// match an uninjected sweep bit for bit.
func TestChaosTransientPanicsRetried(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(12)
	want := cleanSweep(t, "sord", variants)

	var mu sync.Mutex
	hits := map[string]int{}
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if detail != "v3" && detail != "v7" {
			return
		}
		mu.Lock()
		hits[detail]++
		n := hits[detail]
		mu.Unlock()
		if n <= 2 {
			panic("chaos: transient fault " + detail)
		}
	})
	t.Cleanup(disarm)

	var lastProgress explore.Progress
	eng, err := explore.New(run.BET, run.Libs,
		explore.Retry(fastRetry(3)),
		explore.OnProgress(func(p explore.Progress) { lastProgress = p }),
		explore.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatalf("sweep with transient faults failed: %v", err)
	}
	assertBitIdentical(t, got, want)
	if lastProgress.Retried != 4 {
		t.Errorf("Progress.Retried = %d, want 4 (2 variants x 2 retries)", lastProgress.Retried)
	}
}

// TestChaosTransientFaultExceedsBudget: a fault lasting longer than the
// retry budget fails the variant with its attempt count, and the rest of
// the sweep is unharmed.
func TestChaosTransientFaultExceedsBudget(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(6)
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if detail == "v2" {
			panic("chaos: persistent fault")
		}
	})
	t.Cleanup(disarm)

	eng, err := explore.New(run.BET, run.Libs, explore.Retry(fastRetry(3)), explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	analyses, err := eng.Sweep(context.Background(), variants)
	var sweepErr *explore.SweepError
	if !errors.As(err, &sweepErr) || len(sweepErr.Variants) != 1 {
		t.Fatalf("err = %v, want one-variant SweepError", err)
	}
	ve := sweepErr.Variants[0]
	if ve.Index != 2 || ve.MachineName != "v2" || ve.Attempts != 3 || !errors.Is(ve, guard.ErrPanic) {
		t.Errorf("VariantError = index %d name %q attempts %d err %v", ve.Index, ve.MachineName, ve.Attempts, ve.Err)
	}
	if ve.Fingerprint != variants[2].Fingerprint() {
		t.Errorf("VariantError fingerprint %q != machine fingerprint %q", ve.Fingerprint, variants[2].Fingerprint())
	}
	if !strings.Contains(ve.Error(), "v2") || !strings.Contains(ve.Error(), "3 attempts") ||
		!strings.Contains(ve.Error(), ve.Fingerprint) {
		t.Errorf("VariantError message not actionable: %s", ve.Error())
	}
	for i, a := range analyses {
		if (a == nil) != (i == 2) {
			t.Errorf("variant %d: unexpected analysis state (nil=%v)", i, a == nil)
		}
	}
}

// TestChaosTimeoutRetried injects one attempt that overshoots the variant
// deadline; the retry must succeed and the result must stay bit-identical.
func TestChaosTimeoutRetried(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(4)
	want := cleanSweep(t, "sord", variants)

	var mu sync.Mutex
	blocked := false
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if detail != "v1" {
			return
		}
		mu.Lock()
		first := !blocked
		blocked = true
		mu.Unlock()
		if first {
			time.Sleep(300 * time.Millisecond) // well past the deadline
		}
	})
	t.Cleanup(disarm)

	eng, err := explore.New(run.BET, run.Libs,
		explore.Retry(fastRetry(2)),
		explore.VariantTimeout(60*time.Millisecond),
		explore.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	results, wait := eng.Stream(context.Background(), variants)
	got := make([]*hotspot.Analysis, len(variants))
	for r := range results {
		if r.Err != nil {
			t.Fatalf("variant %d failed: %v", r.Index, r.Err)
		}
		if r.Index == 1 && r.Attempts != 2 {
			t.Errorf("timed-out variant took %d attempts, want 2", r.Attempts)
		}
		got[r.Index] = r.Analysis
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
}

// TestChaosKillAndResume is the flagship durability test: a journaled
// sweep is killed mid-run (fault-injected cancellation), then restarted
// by a fresh engine with -resume semantics. The resumed sweep must replay
// every journaled variant without recomputing it and produce results
// bit-identical to a never-interrupted sweep.
func TestChaosKillAndResume(t *testing.T) {
	run := prepared(t, "srad")
	variants := chaosVariants(24)
	want := cleanSweep(t, "srad", variants)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Phase 1: journaled sweep, killed after ~8 evaluations.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	evals := 0
	disarm := guard.Arm("explore.evaluate", func(string) {
		mu.Lock()
		evals++
		if evals == 8 {
			cancel() // the "kill"
		}
		mu.Unlock()
	})
	eng1, err := explore.New(prepared(t, "srad").BET, run.Libs, explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := eng1.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng1.Sweep(ctx, variants)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep err = %v, want wrapped context.Canceled", err)
	}
	j1.Close()
	disarm()

	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[string]bool{}
	for fp := range j.Replay() {
		journaled[fp] = true
	}
	j.Close()
	if len(journaled) == 0 || len(journaled) >= len(variants) {
		t.Fatalf("journal holds %d of %d variants; kill did not land mid-sweep", len(journaled), len(variants))
	}

	// Phase 2: a fresh engine (new process, no shared cache) resumes.
	// Every evaluate call is recorded: journaled variants must cause none.
	var evaluated []string
	disarm2 := guard.Arm("explore.evaluate", func(detail string) {
		mu.Lock()
		evaluated = append(evaluated, detail)
		mu.Unlock()
	})
	t.Cleanup(disarm2)
	eng2, err := explore.New(run.BET, run.Libs, explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := eng2.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if eng2.Replayable() != len(journaled) {
		t.Errorf("Replayable = %d, want %d", eng2.Replayable(), len(journaled))
	}

	results, wait := eng2.Stream(context.Background(), variants)
	got := make([]*hotspot.Analysis, len(variants))
	replayedCount := 0
	for r := range results {
		if r.Err != nil {
			t.Fatalf("resumed variant %d: %v", r.Index, r.Err)
		}
		wasJournaled := journaled[variants[r.Index].Fingerprint()]
		if r.Replayed != wasJournaled {
			t.Errorf("variant %d: Replayed=%v, journaled=%v", r.Index, r.Replayed, wasJournaled)
		}
		if r.Replayed {
			replayedCount++
		}
		got[r.Index] = r.Analysis
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if replayedCount != len(journaled) {
		t.Errorf("replayed %d variants, journal held %d", replayedCount, len(journaled))
	}
	// Zero recomputation of journaled variants.
	for _, name := range evaluated {
		for i, v := range variants {
			if v.Name == name && journaled[v.Fingerprint()] {
				t.Errorf("journaled variant %d (%s) was recomputed", i, name)
			}
		}
	}
	if len(evaluated) != len(variants)-len(journaled) {
		t.Errorf("%d fresh evaluations, want %d", len(evaluated), len(variants)-len(journaled))
	}
	assertBitIdentical(t, got, want)

	// Phase 3: resume again — everything replays, nothing evaluates.
	mu.Lock()
	evaluated = nil
	mu.Unlock()
	eng3, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := eng3.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	got3, err := eng3.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(evaluated)
	mu.Unlock()
	if n != 0 {
		t.Errorf("fully journaled sweep recomputed %d variants", n)
	}
	assertBitIdentical(t, got3, want)
	if stats := eng3.CacheStats(); stats.Hits+stats.Misses != 0 {
		t.Errorf("replay touched the memo cache: %+v", stats)
	}
}

// TestChaosAdaptiveKillAndResume: the adaptive analogue of the flagship
// durability test. A journaled surrogate-guided search is killed mid-round,
// then restarted with the same seed against the same journal. Because the
// seed subsample and the ranking are deterministic functions of the
// observations, the resumed search must retrace the identical round
// sequence — replaying every journaled evaluation with zero recomputation —
// and converge to the same incumbent with an identical round trace.
func TestChaosAdaptiveKillAndResume(t *testing.T) {
	run := prepared(t, "srad")
	axes := []explore.Axis{
		{Param: "freq-ghz", Values: []float64{1.2, 1.6, 2.0, 2.4}},
		{Param: "mem-latency", Values: []float64{80, 110, 150}},
		{Param: "hit-l1", Values: []float64{0.9, 0.95, 0.99}},
	}
	grid := explore.Grid{Base: hw.BGQ(), Axes: axes}
	variants, err := grid.Variants()
	if err != nil {
		t.Fatal(err)
	}
	opt := explore.AdaptiveOptions{Seed: 11}

	// Reference: a never-interrupted, journal-free adaptive run.
	engRef, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engRef.Adaptive(context.Background(), variants, axes, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: journaled search, killed mid-round after 5 evaluations.
	path := filepath.Join(t.TempDir(), "adaptive.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	evals := 0
	disarm := guard.Arm("explore.evaluate", func(string) {
		mu.Lock()
		evals++
		if evals == 5 {
			cancel() // the "kill"
		}
		mu.Unlock()
	})
	eng1, err := explore.New(run.BET, run.Libs, explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := eng1.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng1.Adaptive(ctx, variants, axes, opt)
	if res1 != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("killed search returned (%v, %v), want (nil, context.Canceled)", res1, err)
	}
	j1.Close()
	disarm()

	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[string]bool{}
	for fp := range j.Replay() {
		journaled[fp] = true
	}
	j.Close()
	if len(journaled) == 0 || len(journaled) >= want.Evals {
		t.Fatalf("journal holds %d evaluations (reference run spends %d); kill did not land mid-search", len(journaled), want.Evals)
	}

	// Phase 2: fresh engine, same seed, resumed journal. Journaled
	// evaluations must replay — never recompute.
	var evaluated []string
	disarm2 := guard.Arm("explore.evaluate", func(detail string) {
		mu.Lock()
		evaluated = append(evaluated, detail)
		mu.Unlock()
	})
	t.Cleanup(disarm2)
	eng2, err := explore.New(run.BET, run.Libs, explore.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := eng2.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, err := eng2.Adaptive(context.Background(), variants, axes, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range evaluated {
		for i, v := range variants {
			if v.Name == name && journaled[v.Fingerprint()] {
				t.Errorf("journaled variant %d (%s) was recomputed after resume", i, name)
			}
		}
	}
	replayedCount := 0
	for _, r := range got.Results {
		if r.Machine != nil && r.Replayed {
			replayedCount++
		}
	}
	if replayedCount != len(journaled) {
		t.Errorf("resumed search replayed %d evaluations, journal held %d", replayedCount, len(journaled))
	}
	if len(evaluated) != want.Evals-len(journaled) {
		t.Errorf("%d fresh evaluations after resume, want %d", len(evaluated), want.Evals-len(journaled))
	}

	// Same incumbent, same spend, identical round-by-round trace.
	if got.BestIndex != want.BestIndex || got.Best.Fingerprint() != want.Best.Fingerprint() {
		t.Errorf("resumed incumbent %d (%s) != reference %d (%s)",
			got.BestIndex, got.Best.Fingerprint(), want.BestIndex, want.Best.Fingerprint())
	}
	if got.BestAnalysis.TotalTime != want.BestAnalysis.TotalTime {
		t.Errorf("resumed incumbent time %v != reference %v", got.BestAnalysis.TotalTime, want.BestAnalysis.TotalTime)
	}
	if got.Evals != want.Evals || got.Converged != want.Converged {
		t.Errorf("resumed spend (%d, converged=%v) != reference (%d, %v)", got.Evals, got.Converged, want.Evals, want.Converged)
	}
	gotTrace, err := json.Marshal(got.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	wantTrace, err := json.Marshal(want.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("resumed round trace differs from reference:\n%s\n%s", gotTrace, wantTrace)
	}
	assertBitIdentical(t, []*hotspot.Analysis{got.BestAnalysis}, []*hotspot.Analysis{want.BestAnalysis})
}

// TestChaosResumeSurvivesTornTail: a crash mid-Append leaves a torn final
// record; resume must drop it, replay the intact records, and recompute
// only what the journal lost.
func TestChaosResumeSurvivesTornTail(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(5)
	want := cleanSweep(t, "sord", variants)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	eng1, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := eng1.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng1.Sweep(context.Background(), variants); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Tear the tail: simulate a crash half-way through an Append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	eng2, err := explore.New(run.BET, run.Libs)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := eng2.UseJournal(path)
	if err != nil {
		t.Fatalf("torn journal not recovered: %v", err)
	}
	defer j2.Close()
	if _, torn := j2.Recovered(); !torn {
		t.Error("torn tail not detected")
	}
	if eng2.Replayable() != len(variants) {
		t.Errorf("Replayable = %d, want %d intact records", eng2.Replayable(), len(variants))
	}
	got, err := eng2.Sweep(context.Background(), variants)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
}

// TestChaosBreakerStopsHammering: a deterministic fault class burns its
// full retry budget only until the breaker threshold, then fails fast.
func TestChaosBreakerStopsHammering(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(10)
	var mu sync.Mutex
	attempts := map[string]int{}
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		mu.Lock()
		attempts[detail]++
		mu.Unlock()
		switch detail {
		case "v2", "v4", "v6", "v8":
			panic("chaos: deterministic fault")
		}
	})
	t.Cleanup(disarm)

	eng, err := explore.New(run.BET, run.Libs,
		explore.Retry(fastRetry(4)),
		explore.BreakerThreshold(2),
		explore.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Sweep(context.Background(), variants)
	var sweepErr *explore.SweepError
	if !errors.As(err, &sweepErr) || len(sweepErr.Variants) != 4 {
		t.Fatalf("err = %v, want 4-variant SweepError", err)
	}
	// Workers(1) walks variants in order: v2 and v4 exhaust the budget
	// (4 attempts each), opening the "panic" class; v6 and v8 get one
	// attempt, no retries.
	for _, c := range []struct {
		name string
		want int
	}{{"v2", 4}, {"v4", 4}, {"v6", 1}, {"v8", 1}, {"v0", 1}, {"v9", 1}} {
		if got := attempts[c.name]; got != c.want {
			t.Errorf("%s evaluated %d times, want %d", c.name, got, c.want)
		}
	}
}

// TestJournalRefusedForDifferentWorkload: resuming srad's journal under
// sord must fail loudly instead of serving wrong numbers.
func TestJournalRefusedForDifferentWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	runA := prepared(t, "srad")
	engA, err := explore.New(runA.BET, runA.Libs)
	if err != nil {
		t.Fatal(err)
	}
	jA, err := engA.UseJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA.Sweep(context.Background(), chaosVariants(3)); err != nil {
		t.Fatal(err)
	}
	jA.Close()

	runB := prepared(t, "sord")
	engB, err := explore.New(runB.BET, runB.Libs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engB.UseJournal(path); !errors.Is(err, journal.ErrMetaMismatch) {
		t.Fatalf("foreign journal accepted: %v", err)
	}
	// The Journal engine option enforces the same binding at New.
	jB, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jB.Close()
	if _, err := explore.New(runB.BET, runB.Libs, explore.Journal(jB)); !errors.Is(err, journal.ErrMetaMismatch) {
		t.Fatalf("foreign journal accepted via option: %v", err)
	}
}

// TestChaosValidationNotRetried: an invalid machine is a deterministic
// rejection — exactly one attempt regardless of the retry budget.
func TestChaosValidationNotRetried(t *testing.T) {
	run := prepared(t, "sord")
	variants := chaosVariants(3)
	variants[1].MemBandwidthGBs = 0
	var mu sync.Mutex
	attempts := 0
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if detail == "v1" {
			mu.Lock()
			attempts++
			mu.Unlock()
		}
	})
	t.Cleanup(disarm)
	eng, err := explore.New(run.BET, run.Libs, explore.Retry(fastRetry(5)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Sweep(context.Background(), variants)
	var sweepErr *explore.SweepError
	if !errors.As(err, &sweepErr) || len(sweepErr.Variants) != 1 {
		t.Fatalf("err = %v, want one-variant SweepError", err)
	}
	if attempts != 1 {
		t.Errorf("invalid machine evaluated %d times, want 1", attempts)
	}
	if sweepErr.Variants[0].Attempts != 1 {
		t.Errorf("VariantError.Attempts = %d, want 1", sweepErr.Variants[0].Attempts)
	}
}
