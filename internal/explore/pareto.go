package explore

import (
	"sort"

	"skope/internal/hotspot"
	"skope/internal/hw"
)

// CostFunc scores a machine variant in some cost unit (silicon budget,
// power, dollars — whatever the co-design study trades projected time
// against).
type CostFunc func(*hw.Machine) float64

// RelativeCost is a crude hardware-cost proxy for Pareto views when no
// real cost model is at hand: scalar peak GFLOP/s plus weighted DRAM and
// network bandwidth plus cache capacity, in arbitrary but fixed units.
// Co-design studies with a real budget should supply their own CostFunc.
func RelativeCost(m *hw.Machine) float64 {
	return m.FPOpsPerCycle*m.FreqGHz +
		0.25*m.MemBandwidthGBs +
		0.5*float64(m.LLCSizeB)/(1<<20) +
		0.05*float64(m.L1SizeB)/(1<<10) +
		0.5*m.NetBandwidthGBs
}

// Best returns the index of the analysis with the lowest projected total
// time (-1 if the slice is empty or all nil).
func Best(analyses []*hotspot.Analysis) int {
	best := -1
	for i, a := range analyses {
		if a == nil {
			continue
		}
		if best < 0 || a.TotalTime < analyses[best].TotalTime {
			best = i
		}
	}
	return best
}

// Point is one variant on the time/cost plane.
type Point struct {
	// Index is the variant's position in the sweep inputs.
	Index int
	// Machine is the variant.
	Machine *hw.Machine
	// Time is the projected total execution time in seconds.
	Time float64
	// Cost is the CostFunc score.
	Cost float64
}

// Pareto returns the non-dominated variants of a sweep over (projected
// time, cost): a variant is kept iff no other variant is at least as good
// on both axes and strictly better on one. The frontier is sorted by
// ascending cost (hence descending time). variants and analyses must be
// index-aligned, as returned by Engine.Sweep; nil analyses are skipped.
func Pareto(variants []*hw.Machine, analyses []*hotspot.Analysis, cost CostFunc) []Point {
	pts := make([]Point, 0, len(analyses))
	for i, a := range analyses {
		if a == nil || i >= len(variants) {
			continue
		}
		pts = append(pts, Point{Index: i, Machine: variants[i], Time: a.TotalTime, Cost: cost(variants[i])})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Cost != pts[j].Cost {
			return pts[i].Cost < pts[j].Cost
		}
		return pts[i].Time < pts[j].Time
	})
	var frontier []Point
	for _, p := range pts {
		// Within a cost tie the fastest comes first, so a single
		// strictly-decreasing-time scan yields the frontier.
		if n := len(frontier); n > 0 && p.Time >= frontier[n-1].Time {
			continue // dominated (or tied) by a cheaper-or-equal variant
		}
		frontier = append(frontier, p)
	}
	return frontier
}
