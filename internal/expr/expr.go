// Package expr implements the symbolic expression trees used throughout the
// SKOPE-style toolchain. Code skeletons express loop bounds, branch
// probabilities, data sizes, and instruction counts as expressions over named
// input variables (e.g. "n*m/4"); the Bayesian Execution Tree evaluates these
// expressions against a runtime context during execution-flow modeling.
//
// Expressions are immutable trees. Evaluation takes an Env (variable
// bindings) and yields a float64. A small recursive-descent parser accepts a
// C-like grammar with the usual arithmetic precedence, comparisons,
// min/max/ceil/floor/sqrt/log2/abs builtins, and the ternary ?: operator.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Env binds variable names to numeric values for expression evaluation.
type Env map[string]float64

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Names returns the variable names bound in the environment, sorted.
func (e Env) Names() []string {
	names := make([]string, 0, len(e))
	for k := range e {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Expr is an immutable symbolic expression.
type Expr interface {
	// Eval computes the numeric value of the expression under env. It
	// returns an error if a referenced variable is unbound or an operation
	// is undefined (e.g. division by zero).
	Eval(env Env) (float64, error)
	// Vars appends the free variable names of the expression to dst.
	Vars(dst map[string]bool)
	// String renders the expression in parseable form.
	String() string
}

// Const is a numeric literal.
type Const float64

// Eval implements Expr.
func (c Const) Eval(Env) (float64, error) { return float64(c), nil }

// Vars implements Expr.
func (c Const) Vars(map[string]bool) {}

func (c Const) String() string {
	f := float64(c)
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Var is a reference to a named context variable.
type Var string

// Eval implements Expr.
func (v Var) Eval(env Env) (float64, error) {
	val, ok := env[string(v)]
	if !ok {
		return 0, fmt.Errorf("expr: unbound variable %q", string(v))
	}
	return val, nil
}

// Vars implements Expr.
func (v Var) Vars(dst map[string]bool) { dst[string(v)] = true }

func (v Var) String() string { return string(v) }

// Op identifies a binary operator.
type Op int

// Binary operators. Comparison operators evaluate to 1 (true) or 0 (false).
const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	Pow
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	And
	Or
)

var opNames = map[Op]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%", Pow: "^",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
	And: "&&", Or: "||",
}

func (o Op) String() string { return opNames[o] }

// Binary applies Op to two sub-expressions.
type Binary struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	return applyOp(b.Op, l, r)
}

func applyOp(op Op, l, r float64) (float64, error) {
	switch op {
	case Add:
		return l + r, nil
	case Sub:
		return l - r, nil
	case Mul:
		return l * r, nil
	case Div:
		if r == 0 {
			return 0, fmt.Errorf("expr: division by zero")
		}
		return l / r, nil
	case Mod:
		if r == 0 {
			return 0, fmt.Errorf("expr: modulo by zero")
		}
		return math.Mod(l, r), nil
	case Pow:
		return math.Pow(l, r), nil
	case Lt:
		return boolVal(l < r), nil
	case Le:
		return boolVal(l <= r), nil
	case Gt:
		return boolVal(l > r), nil
	case Ge:
		return boolVal(l >= r), nil
	case Eq:
		return boolVal(l == r), nil
	case Ne:
		return boolVal(l != r), nil
	case And:
		return boolVal(l != 0 && r != 0), nil
	case Or:
		return boolVal(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("expr: unknown operator %d", op)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Vars implements Expr.
func (b *Binary) Vars(dst map[string]bool) {
	b.L.Vars(dst)
	b.R.Vars(dst)
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Neg is unary negation.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(env Env) (float64, error) {
	v, err := n.X.Eval(env)
	return -v, err
}

// Vars implements Expr.
func (n *Neg) Vars(dst map[string]bool) { n.X.Vars(dst) }

func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Call is a builtin function application.
type Call struct {
	Name string
	Args []Expr
}

type builtin struct {
	arity int
	fn    func(args []float64) (float64, error)
}

var builtins = map[string]builtin{
	"min":   {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max":   {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
	"ceil":  {1, func(a []float64) (float64, error) { return math.Ceil(a[0]), nil }},
	"floor": {1, func(a []float64) (float64, error) { return math.Floor(a[0]), nil }},
	"abs":   {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("expr: sqrt of negative value %g", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"log2": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("expr: log2 of non-positive value %g", a[0])
		}
		return math.Log2(a[0]), nil
	}},
}

// IsBuiltin reports whether name is a recognized builtin function.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// Eval implements Expr.
func (c *Call) Eval(env Env) (float64, error) {
	b, ok := builtins[c.Name]
	if !ok {
		return 0, fmt.Errorf("expr: unknown function %q", c.Name)
	}
	if len(c.Args) != b.arity {
		return 0, fmt.Errorf("expr: %s expects %d args, got %d", c.Name, b.arity, len(c.Args))
	}
	vals := make([]float64, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	return b.fn(vals)
}

// Vars implements Expr.
func (c *Call) Vars(dst map[string]bool) {
	for _, a := range c.Args {
		a.Vars(dst)
	}
}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(args, ", "))
}

// Cond is the ternary conditional operator: If != 0 ? Then : Else.
type Cond struct {
	If, Then, Else Expr
}

// Eval implements Expr.
func (c *Cond) Eval(env Env) (float64, error) {
	p, err := c.If.Eval(env)
	if err != nil {
		return 0, err
	}
	if p != 0 {
		return c.Then.Eval(env)
	}
	return c.Else.Eval(env)
}

// Vars implements Expr.
func (c *Cond) Vars(dst map[string]bool) {
	c.If.Vars(dst)
	c.Then.Vars(dst)
	c.Else.Vars(dst)
}

func (c *Cond) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", c.If, c.Then, c.Else)
}

// FreeVars returns the sorted free variable names of e.
func FreeVars(e Expr) []string {
	set := make(map[string]bool)
	e.Vars(set)
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// IsConst reports whether e has no free variables, and if so its value.
func IsConst(e Expr) (float64, bool) {
	set := make(map[string]bool)
	e.Vars(set)
	if len(set) != 0 {
		return 0, false
	}
	v, err := e.Eval(nil)
	if err != nil {
		return 0, false
	}
	return v, true
}

// MustEval evaluates e under env and panics on error. It is intended for
// expressions already validated by the caller (e.g. in tests and examples).
func MustEval(e Expr, env Env) float64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Simplify performs constant folding on e, returning a (possibly) smaller
// equivalent expression. Variables and unevaluable subtrees are preserved.
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case Const, Var:
		return e
	case *Neg:
		x := Simplify(t.X)
		if c, ok := x.(Const); ok {
			return Const(-float64(c))
		}
		return &Neg{X: x}
	case *Binary:
		l, r := Simplify(t.L), Simplify(t.R)
		lc, lok := l.(Const)
		rc, rok := r.(Const)
		if lok && rok {
			if v, err := applyOp(t.Op, float64(lc), float64(rc)); err == nil {
				return Const(v)
			}
		}
		// Identity simplifications.
		switch t.Op {
		case Add:
			if lok && float64(lc) == 0 {
				return r
			}
			if rok && float64(rc) == 0 {
				return l
			}
		case Sub:
			if rok && float64(rc) == 0 {
				return l
			}
		case Mul:
			if lok && float64(lc) == 1 {
				return r
			}
			if rok && float64(rc) == 1 {
				return l
			}
			if lok && float64(lc) == 0 {
				return Const(0)
			}
			if rok && float64(rc) == 0 {
				return Const(0)
			}
		case Div:
			if rok && float64(rc) == 1 {
				return l
			}
		}
		return &Binary{Op: t.Op, L: l, R: r}
	case *Call:
		args := make([]Expr, len(t.Args))
		allConst := true
		for i, a := range t.Args {
			args[i] = Simplify(a)
			if _, ok := args[i].(Const); !ok {
				allConst = false
			}
		}
		out := &Call{Name: t.Name, Args: args}
		if allConst {
			if v, err := out.Eval(nil); err == nil {
				return Const(v)
			}
		}
		return out
	case *Cond:
		cond := Simplify(t.If)
		if c, ok := cond.(Const); ok {
			if float64(c) != 0 {
				return Simplify(t.Then)
			}
			return Simplify(t.Else)
		}
		return &Cond{If: cond, Then: Simplify(t.Then), Else: Simplify(t.Else)}
	}
	return e
}
