package expr

import (
	"strings"
	"testing"
)

// FuzzExprParse checks that the expression parser never panics or
// overflows the stack: it either returns an Expr or a descriptive error
// (guard limits turn pathological nesting into guard.ErrLimit).
func FuzzExprParse(f *testing.F) {
	// Representative expressions from the five workloads' size arithmetic
	// and skeleton annotations.
	seeds := []string{
		"n",
		"9*m",
		"n*m*8",
		"5*m + 2",
		"(n - 1) * (m - 1)",
		"n^2 / 4",
		"max(n, m) * log2(n)",
		"sqrt(n*n + m*m)",
		"-n + +m - -1",
		"1e300 * 1e300",
		"n / 0",
		"f(g(h(x)))",
		"",
		"((((",
		"1 +",
		"n m",
		strings.Repeat("(", 512) + "1" + strings.Repeat(")", 512),
		strings.Repeat("-", 1024) + "x",
		strings.Repeat("1+", 4096) + "1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)

		// Lenient mode must never panic, always return a usable
		// expression, and agree with the strict parser bit for bit on
		// accepted input.
		le, diags := ParseLenient(src, nil)
		if le == nil {
			t.Fatalf("ParseLenient(%q) returned a nil expression", src)
		}
		_ = le.String()
		_, _ = le.Eval(Env{"n": 4, "m": 8, "x": 1})
		if err != nil {
			if len(diags) == 0 {
				t.Fatalf("ParseLenient(%q): strict parse failed (%v) but no diagnostics", src, err)
			}
		} else {
			if len(diags) != 0 {
				t.Fatalf("ParseLenient(%q): diagnostics %v on input the strict parser accepts", src, diags)
			}
			if le.String() != e.String() {
				t.Fatalf("ParseLenient(%q) = %s, strict = %s", src, le.String(), e.String())
			}
		}

		if err != nil {
			return
		}
		// A parsed expression must survive the rest of its API.
		_ = e.String()
		_, _ = e.Eval(Env{"n": 4, "m": 8, "x": 1})
	})
}
