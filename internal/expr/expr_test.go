package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstEval(t *testing.T) {
	v, err := Const(3.5).Eval(nil)
	if err != nil || v != 3.5 {
		t.Fatalf("Const eval = %v, %v", v, err)
	}
}

func TestVarEval(t *testing.T) {
	env := Env{"n": 42}
	v, err := Var("n").Eval(env)
	if err != nil || v != 42 {
		t.Fatalf("Var eval = %v, %v", v, err)
	}
	if _, err := Var("missing").Eval(env); err == nil {
		t.Fatal("expected unbound variable error")
	}
}

func TestParseArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want float64
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"10-4-3", nil, 3},
		{"2^10", nil, 1024},
		{"2^2^3", nil, 256}, // right associative
		{"7%3", nil, 1},
		{"n*m", Env{"n": 6, "m": 7}, 42},
		{"min(3, 5)", nil, 3},
		{"max(3, 5)", nil, 5},
		{"ceil(2.1)", nil, 3},
		{"floor(2.9)", nil, 2},
		{"abs(-4)", nil, 4},
		{"sqrt(16)", nil, 4},
		{"log2(8)", nil, 3},
		{"1 < 2", nil, 1},
		{"2 <= 1", nil, 0},
		{"3 == 3", nil, 1},
		{"3 != 3", nil, 0},
		{"1 && 0", nil, 0},
		{"1 || 0", nil, 1},
		{"n > 5 ? 10 : 20", Env{"n": 6}, 10},
		{"n > 5 ? 10 : 20", Env{"n": 5}, 20},
		{"-n", Env{"n": 3}, -3},
		{"!0", nil, 1},
		{"!7", nil, 0},
		{"1.5e2", nil, 150},
		{"n/4", Env{"n": 10}, 2.5},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, err := e.Eval(c.env)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %g, want %g", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "min(1)", "nosuchfn(1,2)", "1 2", "? 1 : 2", "a ? 1", "a ? 1 :",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{"1/0", "7%0", "sqrt(-1)", "log2(0)", "x+1"}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := e.Eval(Env{}); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"1+2*3", "n*(m+1)", "min(n, 4)/2", "n > 5 ? 10 : 20",
		"-x + 3", "a && b || c", "2^n", "abs(x - y)",
	}
	env := Env{"n": 7, "m": 3, "x": 2, "y": 9, "a": 1, "b": 0, "c": 1}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q failed: %v", src, e1.String(), err)
		}
		v1 := MustEval(e1, env)
		v2 := MustEval(e2, env)
		if v1 != v2 {
			t.Errorf("round trip %q: %g != %g", src, v1, v2)
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := MustParse("n*m + min(n, k) - 3")
	got := FreeVars(e)
	want := []string{"k", "m", "n"}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
}

func TestIsConst(t *testing.T) {
	if v, ok := IsConst(MustParse("2*3+4")); !ok || v != 10 {
		t.Errorf("IsConst(2*3+4) = %v, %v", v, ok)
	}
	if _, ok := IsConst(MustParse("n+1")); ok {
		t.Error("IsConst(n+1) should be false")
	}
}

func TestSimplifyFoldsConstants(t *testing.T) {
	cases := map[string]float64{
		"2*3+4":       10,
		"min(2, 7)":   2,
		"1 ? 5 : 9":   5,
		"0 ? 5 : 9":   9,
		"-(2+3)":      -5,
		"sqrt(4) + 2": 4,
	}
	for src, want := range cases {
		s := Simplify(MustParse(src))
		c, ok := s.(Const)
		if !ok {
			t.Errorf("Simplify(%q) = %s, not a constant", src, s)
			continue
		}
		if float64(c) != want {
			t.Errorf("Simplify(%q) = %g, want %g", src, float64(c), want)
		}
	}
}

func TestSimplifyIdentities(t *testing.T) {
	cases := map[string]string{
		"n + 0": "n",
		"0 + n": "n",
		"n - 0": "n",
		"n * 1": "n",
		"1 * n": "n",
		"n * 0": "0",
		"0 * n": "0",
		"n / 1": "n",
	}
	for src, want := range cases {
		s := Simplify(MustParse(src))
		if s.String() != want {
			t.Errorf("Simplify(%q) = %s, want %s", src, s, want)
		}
	}
}

func TestSimplifyPreservesValue(t *testing.T) {
	env := Env{"n": 13, "m": 5}
	srcs := []string{
		"n*m + 2*3", "min(n, m*2) + 0", "(n > m ? n : m) * 1", "n - 0 + (4-4)",
	}
	for _, src := range srcs {
		e := MustParse(src)
		s := Simplify(e)
		if MustEval(e, env) != MustEval(s, env) {
			t.Errorf("Simplify changed value of %q: %s", src, s)
		}
	}
}

func TestEnvCloneIndependent(t *testing.T) {
	a := Env{"x": 1}
	b := a.Clone()
	b["x"] = 2
	b["y"] = 3
	if a["x"] != 1 {
		t.Error("Clone is not independent")
	}
	if _, ok := a["y"]; ok {
		t.Error("Clone leaked new key into original")
	}
}

func TestFormatEnvSorted(t *testing.T) {
	s := FormatEnv(Env{"b": 2, "a": 1})
	if s != "{a=1, b=2}" {
		t.Errorf("FormatEnv = %q", s)
	}
}

// Property: Simplify never changes the value of an expression, for randomly
// generated expression trees.
func TestQuickSimplifyEquivalence(t *testing.T) {
	env := Env{"a": 3, "b": 7, "c": 11}
	f := func(seed int64) bool {
		e := randomExpr(newRand(seed), 0)
		v1, err1 := e.Eval(env)
		s := Simplify(e)
		v2, err2 := s.Eval(env)
		if err1 != nil {
			// Simplification may fold an erroring subtree away only if it
			// provably cannot be reached; otherwise both may error. Accept
			// any outcome when the original errors.
			return true
		}
		if err2 != nil {
			return false
		}
		if math.IsNaN(v1) && math.IsNaN(v2) {
			return true
		}
		return v1 == v2 || math.Abs(v1-v2) < 1e-9*math.Max(math.Abs(v1), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: String renders a parseable expression with the same value.
func TestQuickStringRoundTrip(t *testing.T) {
	env := Env{"a": 3, "b": 7, "c": 11}
	f := func(seed int64) bool {
		e := randomExpr(newRand(seed), 0)
		v1, err1 := e.Eval(env)
		e2, err := Parse(e.String())
		if err != nil {
			return false
		}
		v2, err2 := e2.Eval(env)
		if err1 != nil {
			return err2 != nil
		}
		if err2 != nil {
			return false
		}
		if math.IsNaN(v1) && math.IsNaN(v2) {
			return true
		}
		return v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic PRNG (xorshift) so the property tests do
// not depend on math/rand seeding behaviour across Go versions.
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(seed)
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

func randomExpr(r *xorshift, depth int) Expr {
	if depth > 4 || r.intn(4) == 0 {
		switch r.intn(3) {
		case 0:
			return Const(float64(r.intn(21) - 10))
		case 1:
			return Var([]string{"a", "b", "c"}[r.intn(3)])
		default:
			return Const(float64(r.intn(5)))
		}
	}
	switch r.intn(6) {
	case 0:
		return &Neg{X: randomExpr(r, depth+1)}
	case 1:
		return &Call{Name: "min", Args: []Expr{randomExpr(r, depth+1), randomExpr(r, depth+1)}}
	case 2:
		return &Call{Name: "abs", Args: []Expr{randomExpr(r, depth+1)}}
	case 3:
		return &Cond{If: randomExpr(r, depth+1), Then: randomExpr(r, depth+1), Else: randomExpr(r, depth+1)}
	default:
		ops := []Op{Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or}
		return &Binary{Op: ops[r.intn(len(ops))], L: randomExpr(r, depth+1), R: randomExpr(r, depth+1)}
	}
}

func TestParseIdentWithDots(t *testing.T) {
	// Hint files use dotted names like "grid.nx".
	e := MustParse("grid.nx * grid.ny")
	v := MustEval(e, Env{"grid.nx": 4, "grid.ny": 5})
	if v != 20 {
		t.Errorf("dotted ident eval = %g", v)
	}
}

func TestCallStringHasCommaSpace(t *testing.T) {
	s := (&Call{Name: "min", Args: []Expr{Var("a"), Const(2)}}).String()
	if !strings.Contains(s, "min(a, 2)") {
		t.Errorf("Call.String = %q", s)
	}
}
