package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"skope/internal/guard"
)

// Parse parses a C-like expression string into an Expr, under the default
// guard limits (source size and nesting depth).
//
// Grammar (by descending precedence):
//
//	primary  := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')' | '-' primary | '!' primary
//	power    := primary ('^' primary)*            (right associative)
//	term     := power (('*'|'/'|'%') power)*
//	arith    := term (('+'|'-') term)*
//	cmp      := arith (('<'|'<='|'>'|'>='|'=='|'!=') arith)?
//	and      := cmp ('&&' cmp)*
//	or       := and ('||' and)*
//	expr     := or ('?' expr ':' expr)?
func Parse(src string) (Expr, error) {
	return ParseWithLimits(src, nil)
}

// ParseWithLimits parses src under explicit guard limits (nil means
// guard.Default). Nesting beyond MaxExprDepth and sources beyond
// MaxSourceBytes are rejected with guard.ErrLimit errors instead of
// recursing toward a stack overflow.
func ParseWithLimits(src string, lim *guard.Limits) (Expr, error) {
	if err := lim.CheckSource(len(src)); err != nil {
		return nil, fmt.Errorf("expr: %w", err)
	}
	p := &parser{src: src, maxDepth: lim.Or().MaxExprDepth}
	p.next()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("expr: unexpected trailing input %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse parses src and panics on error; for statically-known expressions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokOp // single- or multi-char operator / punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src      string
	off      int
	tok      token
	depth    int // current recursion depth, counted at parseExpr/parsePrimary
	maxDepth int
}

// enter bumps the recursion depth, failing once the nesting limit is hit.
// Called on the two recursion anchors of the grammar (parseExpr and
// parsePrimary), so every level of source nesting costs at least one unit.
func (p *parser) enter() error {
	p.depth++
	if p.depth > p.maxDepth {
		return fmt.Errorf("expr: %w", guard.Exceeded("expression depth", p.depth, p.maxDepth))
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.off]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		for p.off < len(p.src) && (isDigit(p.src[p.off]) || p.src[p.off] == '.' ||
			p.src[p.off] == 'e' || p.src[p.off] == 'E' ||
			((p.src[p.off] == '+' || p.src[p.off] == '-') && p.off > start &&
				(p.src[p.off-1] == 'e' || p.src[p.off-1] == 'E'))) {
			p.off++
		}
		p.tok = token{kind: tokNumber, text: p.src[start:p.off], pos: start}
	case isIdentStart(c):
		for p.off < len(p.src) && isIdentPart(p.src[p.off]) {
			p.off++
		}
		p.tok = token{kind: tokIdent, text: p.src[start:p.off], pos: start}
	default:
		// Multi-char operators first.
		two := ""
		if p.off+1 < len(p.src) {
			two = p.src[p.off : p.off+2]
		}
		switch two {
		case "<=", ">=", "==", "!=", "&&", "||":
			p.off += 2
			p.tok = token{kind: tokOp, text: two, pos: start}
			return
		}
		p.off++
		p.tok = token{kind: tokOp, text: string(c), pos: start}
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || c == '.' || unicode.IsLetter(rune(c)) || isDigit(c) }

func (p *parser) expect(text string) error {
	if p.tok.kind != tokOp || p.tok.text != text {
		return fmt.Errorf("expr: expected %q, found %q at offset %d", text, p.tok.text, p.tok.pos)
	}
	p.next()
	return nil
}

func (p *parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "?" {
		p.next()
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{If: cond, Then: thenE, Else: elseE}, nil
	}
	return cond, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: Or, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: And, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]Op{
	"<": Lt, "<=": Le, ">": Gt, ">=": Ge, "==": Eq, "!=": Ne,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			p.next()
			r, err := p.parseArith()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseArith() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := Add
		if p.tok.text == "-" {
			op = Sub
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/" || p.tok.text == "%") {
		var op Op
		switch p.tok.text {
		case "*":
			op = Mul
		case "/":
			op = Div
		case "%":
			op = Mod
		}
		p.next()
		r, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePower() (Expr, error) {
	// Anchored like parseExpr/parsePrimary: '^' right-recurses here
	// without passing through either, so chains must be counted too.
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		exp, err := p.parsePower() // right associative
		if err != nil {
			return nil, err
		}
		return &Binary{Op: Pow, L: base, R: exp}, nil
	}
	return base, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.tok.kind == tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		p.next()
		return Const(v), nil
	case p.tok.kind == tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind == tokOp && p.tok.text == "(" {
			p.next()
			var args []Expr
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind == tokOp && p.tok.text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			b, ok := builtins[name]
			if !ok {
				return nil, fmt.Errorf("expr: unknown function %q at offset %d", name, p.tok.pos)
			}
			if len(args) != b.arity {
				return nil, fmt.Errorf("expr: %s expects %d args, got %d", name, b.arity, len(args))
			}
			return &Call{Name: name, Args: args}, nil
		}
		return Var(name), nil
	case p.tok.kind == tokOp && p.tok.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.kind == tokOp && p.tok.text == "-":
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if c, ok := x.(Const); ok {
			return Const(-float64(c)), nil
		}
		return &Neg{X: x}, nil
	case p.tok.kind == tokOp && p.tok.text == "!":
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: Eq, L: x, R: Const(0)}, nil
	}
	return nil, fmt.Errorf("expr: unexpected token %q at offset %d", p.tok.text, p.tok.pos)
}

// FormatEnv renders an Env compactly for diagnostics, e.g. "{m=4, n=100}".
func FormatEnv(env Env) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range env.Names() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", name, Const(env[name]))
	}
	b.WriteByte('}')
	return b.String()
}
