package expr

import (
	"fmt"

	"skope/internal/guard"
)

// Hole is a placeholder for an expression that could not be parsed. It
// keeps the surrounding statement structurally intact while refusing to
// produce a number: Eval always errors, so a strict model build fails
// loudly and a lenient build (core.Build with Options.Lenient) substitutes
// its documented prior and records the substitution as a diagnostic.
type Hole struct {
	// Text is the unparseable source fragment, for diagnostics.
	Text string
}

// Eval implements Expr. A hole never evaluates; the caller must decide
// what the missing value defaults to.
func (h Hole) Eval(Env) (float64, error) {
	return 0, fmt.Errorf("expr: unresolved hole %q", h.Text)
}

// Vars implements Expr. A hole binds nothing.
func (h Hole) Vars(map[string]bool) {}

// String renders the hole as an impossible call so it cannot be confused
// with a parseable expression.
func (h Hole) String() string { return "hole()" }

// ParseLenient parses src like ParseWithLimits, but never fails: on any
// error — syntax, trailing garbage, or a guard limit — it returns a Hole
// carrying the source text plus one guard.Diagnostic describing what was
// lost. On valid input it returns the exact ParseWithLimits result and no
// diagnostics, so lenient parsing of intact sources is bit-identical to
// strict parsing.
func ParseLenient(src string, lim *guard.Limits) (Expr, []guard.Diagnostic) {
	e, err := ParseWithLimits(src, lim)
	if err == nil {
		return e, nil
	}
	d := guard.Diagnostic{
		Severity: guard.SevError,
		Stage:    "expr",
		Code:     "syntax",
		Message:  fmt.Sprintf("unparseable expression %q: %v", src, err),
	}
	return Hole{Text: src}, []guard.Diagnostic{d}
}
