// Command genfuzzcorpus regenerates the checked-in seed corpora for the
// three parser fuzz targets (expr, skeleton, minilang). Each corpus file
// uses Go's native fuzzing encoding ("go test fuzz v1"), so `go test
// -fuzz` and `make fuzz-short` pick the seeds up from testdata/fuzz
// without any f.Add call — and a cloned checkout fuzzes the real grammar
// from the first mutation.
//
// Run from the repository root after changing the workloads or the
// translator:
//
//	go run skope/internal/tools/genfuzzcorpus
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"skope/internal/interp"
	"skope/internal/minilang"
	"skope/internal/translate"
	"skope/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genfuzzcorpus: ")
	if _, err := os.Stat("go.mod"); err != nil {
		log.Fatal("run from the repository root (go.mod not found)")
	}
	write("internal/expr", "FuzzExprParse", exprSeeds())
	write("internal/minilang", "FuzzMinilangParse", minilangSeeds())
	write("internal/skeleton", "FuzzSkeletonParse", skeletonSeeds())
}

// write drops one corpus file per seed under
// <pkg>/testdata/fuzz/<target>/seed-NNN.
func write(pkg, target string, seeds []string) {
	dir := filepath.Join(pkg, "testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nstring(%s)\n", strconv.Quote(s))
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %d seeds to %s", len(seeds), dir)
}

// exprSeeds covers the size-arithmetic grammar the workloads' annotations
// use, plus boundary and malformed inputs.
func exprSeeds() []string {
	return []string{
		"n",
		"9*m",
		"n*m*8",
		"5*m + 2",
		"(n - 1) * (m - 1)",
		"n^2 / 4",
		"max(n, m) * log2(n)",
		"sqrt(n*n + m*m)",
		"-n + +m - -1",
		"1e300 * 1e300",
		"n / 0",
		"f(g(h(x)))",
		"",
		"((((",
		"1 +",
		"n m",
		strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64),
	}
}

// minilangSeeds is the five real benchmark programs plus grammar corners.
func minilangSeeds() []string {
	seeds := []string{
		"func main() {}",
		"global n: int = 8;\nfunc main() { for i = 0 .. n { } }",
		"func main() { if 1 < 2 { } else if 2 < 3 { } else { } }",
		"func f(a, b: int) {}",
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		seeds = append(seeds, w.Source)
	}
	return seeds
}

// skeletonSeeds translates the five benchmarks (profile-free fallback)
// so the corpus starts from real generated skeletons, plus handwritten
// grammar corners.
func skeletonSeeds() []string {
	seeds := []string{
		"def main(n)\nend",
		"def main(n)\n  for i = 0 : n label=\"l\"\n    comp flops=n name=\"k\"\n  end\nend",
		"def main(n)\n  if prob=0.5\n    call f(n)\n  end\nend\n\ndef f(n)\nend",
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		prog, err := minilang.Parse(w.Name, w.Source)
		if err != nil {
			log.Fatal(err)
		}
		if err := minilang.Check(prog); err != nil {
			log.Fatal(err)
		}
		res, err := translate.Translate(prog, interp.NewProfile())
		if err != nil {
			log.Fatal(err)
		}
		seeds = append(seeds, res.Text)
	}
	return seeds
}
