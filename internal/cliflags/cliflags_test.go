package cliflags

import (
	"flag"
	"path/filepath"
	"testing"
	"time"

	"skope/internal/hw"
)

// TestRegisteredNames freezes the shared flag surface: these are the names
// the three tools have always exposed, and renaming any of them is a
// breaking change to every script driving skope.
func TestRegisteredNames(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var m Machine
	var g Guard
	var c Criteria
	var s Sweep
	var sv Serve
	m.Register(fs)
	g.Register(fs)
	c.Register(fs, 0.90, 0.50, 10)
	s.Register(fs)
	sv.Register(fs)
	for _, name := range []string{
		"machine", "machine-file", "limits", "lenient",
		"coverage", "leanness", "spots",
		"sweep", "workers", "top", "journal", "resume", "store",
		"retries", "variant-timeout", "min-confidence",
		"max-sessions", "session-ttl", "scrub-interval", "stream-write-timeout",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestMachineResolve(t *testing.T) {
	m := Machine{Preset: "bgq"}
	got, err := m.Resolve()
	if err != nil || got.Name == "" {
		t.Fatalf("preset resolve: %v, %v", got, err)
	}
	if _, err := (&Machine{Preset: "vax"}).Resolve(); err == nil {
		t.Error("unknown preset accepted")
	}

	path := filepath.Join(t.TempDir(), "m.json")
	custom := hw.BGQ()
	custom.Name = "CustomQ"
	if err := hw.SaveConfig(path, custom); err != nil {
		t.Fatal(err)
	}
	// -machine-file wins over -machine.
	got, err = (&Machine{Preset: "bgq", File: path}).Resolve()
	if err != nil || got.Name != "CustomQ" {
		t.Errorf("file resolve: %v, %v", got, err)
	}
}

func TestGuardResolve(t *testing.T) {
	g := Guard{Limits: "nest-depth=12"}
	lim, err := g.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if lim.Or().MaxNestDepth != 12 {
		t.Errorf("nest-depth override lost: %+v", lim)
	}
	if _, err := (&Guard{Limits: "nosuch=1"}).Resolve(); err == nil {
		t.Error("unknown limit key accepted")
	}
}

func TestCriteriaResolve(t *testing.T) {
	c := Criteria{Coverage: 0.8, Leanness: 0.4, MaxSpots: 3}
	crit := c.Resolve()
	if crit.TimeCoverage != 0.8 || crit.CodeLeanness != 0.4 || crit.MaxSpots != 3 {
		t.Errorf("criteria = %+v", crit)
	}
}

func TestAxisListValidatesOnSet(t *testing.T) {
	var a AxisList
	if err := a.Set("nosuch-param=1,2"); err == nil {
		t.Error("unknown parameter accepted")
	}
	if err := a.Set("mem-bandwidth=abc"); err == nil {
		t.Error("non-numeric value accepted")
	}
	if err := a.Set("mem-bandwidth=14,28"); err != nil {
		t.Errorf("valid axis rejected: %v", err)
	}
	if axes, err := a.Axes(); err != nil || len(axes) != 1 {
		t.Errorf("axes = %v, %v", axes, err)
	}
}

func TestSweepVariants(t *testing.T) {
	s := Sweep{Axes: AxisList{"mem-bandwidth=16,32", "freq-ghz=1.6,2.4"}}
	base := hw.BGQ()
	variants, err := s.Variants(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 4 {
		t.Errorf("got %d variants, want 4", len(variants))
	}
}

// TestServeDefaults freezes the serve surface's defaults: admission
// control and session GC off (pre-existing behavior), scrubbing and the
// stream write deadline on.
func TestServeDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var sv Serve
	sv.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sv.MaxSessions != 0 || sv.SessionTTL != 0 {
		t.Errorf("admission defaults changed: %+v", sv)
	}
	if sv.ScrubInterval != 10*time.Minute || sv.StreamWriteTimeout != 30*time.Second {
		t.Errorf("scrub/stream defaults changed: %+v", sv)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	sv = Serve{}
	sv.Register(fs)
	err := fs.Parse([]string{
		"-max-sessions", "8", "-session-ttl", "1h",
		"-scrub-interval", "0", "-stream-write-timeout", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sv.MaxSessions != 8 || sv.SessionTTL != time.Hour ||
		sv.ScrubInterval != 0 || sv.StreamWriteTimeout != 5*time.Second {
		t.Errorf("parsed serve = %+v", sv)
	}
}

func TestSweepParsesFromFlagSet(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var s Sweep
	s.Register(fs)
	err := fs.Parse([]string{
		"-sweep", "mem-bandwidth=16,32", "-sweep", "freq-ghz=1.6,2.4",
		"-store", "results.cas", "-journal", "sweep.journal", "-resume",
		"-retries", "2", "-variant-timeout", "30s", "-min-confidence", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Axes) != 2 || s.Store != "results.cas" || s.Journal != "sweep.journal" ||
		!s.Resume || s.Retries != 2 || s.VariantTimeout != 30*time.Second || s.MinConfidence != 0.5 {
		t.Errorf("parsed sweep = %+v", s)
	}
}
