// Package cliflags is the shared command-line surface of the skope tools.
// cmd/skope, cmd/skopec and cmd/skoped present the same concepts — target
// machine, guard limits, hot-spot criteria, sweep configuration — and had
// grown three diverging copies of the same flag definitions. Each concept
// lives here once, as a small struct with a Register method that installs
// its flags on a flag.FlagSet and a resolver that turns the raw strings
// into domain values. Flag names and semantics are frozen; only the help
// text is shared.
package cliflags

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
)

// Machine is the -machine / -machine-file pair selecting the target.
type Machine struct {
	Preset string
	File   string
}

// Register installs the machine flags on fs.
func (m *Machine) Register(fs *flag.FlagSet) {
	fs.StringVar(&m.Preset, "machine", "bgq", "target machine preset (bgq, xeon)")
	fs.StringVar(&m.File, "machine-file", "", "JSON machine description (overrides -machine; see hw.SaveConfig)")
}

// Resolve returns the selected machine: the JSON description when
// -machine-file is set, the named preset otherwise.
func (m *Machine) Resolve() (*hw.Machine, error) {
	if m.File != "" {
		return hw.LoadConfig(m.File)
	}
	return hw.Preset(m.Preset)
}

// Guard is the -limits / -lenient pair controlling resource guards and
// error recovery.
type Guard struct {
	Limits  string
	Lenient bool
}

// Register installs the guard flags on fs.
func (g *Guard) Register(fs *flag.FlagSet) {
	fs.StringVar(&g.Limits, "limits", "", "guard limit overrides, e.g. \"nest-depth=32,bet-nodes=100000\"; keys: "+strings.Join(guard.LimitKeys(), ", "))
	fs.BoolVar(&g.Lenient, "lenient", false, "error-recovering mode: recover from syntax errors and missing profile data, report diagnostics and a confidence score instead of failing")
}

// Resolve parses the -limits overrides.
func (g *Guard) Resolve() (*guard.Limits, error) {
	lim, err := guard.ParseLimits(g.Limits)
	if err != nil {
		return nil, fmt.Errorf("-limits: %w", err)
	}
	return lim, nil
}

// Criteria is the -coverage / -leanness / -spots triple for hot-spot
// selection. Defaults differ per tool (skopec budgets leanness at 1.0, the
// paper pipeline at 0.5), so Register takes them as arguments.
type Criteria struct {
	Coverage float64
	Leanness float64
	MaxSpots int
}

// Register installs the criteria flags on fs with the tool's defaults.
func (c *Criteria) Register(fs *flag.FlagSet, coverage, leanness float64, maxSpots int) {
	fs.Float64Var(&c.Coverage, "coverage", coverage, "hot-spot time coverage target")
	fs.Float64Var(&c.Leanness, "leanness", leanness, "hot-spot code leanness budget")
	fs.IntVar(&c.MaxSpots, "spots", maxSpots, "maximum hot spots to select (0 = unlimited)")
}

// Resolve returns the selection criteria.
func (c *Criteria) Resolve() hotspot.Criteria {
	return hotspot.Criteria{TimeCoverage: c.Coverage, CodeLeanness: c.Leanness, MaxSpots: c.MaxSpots}
}

// AxisList collects repeated -sweep flags, validating each as it arrives.
type AxisList []string

// String joins the collected axis specs (flag.Value).
func (a *AxisList) String() string { return strings.Join(*a, "; ") }

// Set validates and appends one axis spec (flag.Value).
func (a *AxisList) Set(v string) error {
	if _, err := explore.ParseAxis(v); err != nil {
		return err
	}
	*a = append(*a, v)
	return nil
}

// Axes parses the collected specs into exploration axes.
func (a AxisList) Axes() ([]explore.Axis, error) {
	axes := make([]explore.Axis, 0, len(a))
	for _, spec := range a {
		ax, err := explore.ParseAxis(spec)
		if err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// Sweep is the design-space exploration flag set: the grid axes plus the
// durability (journal, store), resilience (retries, timeout), and quality
// (confidence floor) knobs shared by cmd/skope's sweep mode and the skoped
// daemon's per-session defaults.
type Sweep struct {
	Axes           AxisList
	Workers        int
	Top            int
	Journal        string
	Resume         bool
	Store          string
	Retries        int
	VariantTimeout time.Duration
	MinConfidence  float64
	ShardWorkers   int
	ShardDir       string
	Adaptive       bool
	AdaptiveBudget int
	AdaptiveSeed   uint64
}

// Register installs the sweep flags on fs.
func (s *Sweep) Register(fs *flag.FlagSet) {
	fs.Var(&s.Axes, "sweep", "design-space axis param=v1,v2,... (repeatable; switches to sweep mode)")
	fs.IntVar(&s.Workers, "workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&s.Top, "top", 10, "sweep mode: variants to print (0 = all)")
	fs.StringVar(&s.Journal, "journal", "", "sweep mode: append completed variants to this crash-safe journal file")
	fs.BoolVar(&s.Resume, "resume", false, "sweep mode: replay variants already recorded in -journal instead of recomputing them")
	fs.StringVar(&s.Store, "store", "", "content-addressed result store file: serve identical (workload, variant, criteria) results from earlier runs with zero recomputation, and record fresh ones")
	fs.IntVar(&s.Retries, "retries", 0, "sweep mode: retries per variant for transient failures (exponential backoff with jitter)")
	fs.DurationVar(&s.VariantTimeout, "variant-timeout", 0, "sweep mode: deadline per evaluation attempt, e.g. 30s (0 = none)")
	fs.Float64Var(&s.MinConfidence, "min-confidence", 0, "sweep mode: flag variants whose analysis confidence falls below this floor instead of ranking them (0 = off)")
	fs.IntVar(&s.ShardWorkers, "shard-workers", 0, "sweep mode: distribute the grid across N coordinated worker processes with crash-safe per-shard journals and work stealing (0 = in-process)")
	fs.StringVar(&s.ShardDir, "shard-dir", "", "sweep mode: directory for the sharded sweep's per-shard journals (default: a temporary directory; reuse a directory to resume)")
	fs.BoolVar(&s.Adaptive, "adaptive", false, "sweep mode: surrogate-guided search — evaluate a seed sample, fit an online least-squares surrogate, and spend evaluations only on the top-ranked candidates per round instead of the full grid (exhaustive mode stays the golden reference)")
	fs.IntVar(&s.AdaptiveBudget, "adaptive-budget", 0, "adaptive mode: hard cap on evaluations spent, seed sample included (0 = converge on patience alone)")
	fs.Uint64Var(&s.AdaptiveSeed, "adaptive-seed", 0, "adaptive mode: seed for the deterministic fingerprint-keyed bootstrap sample; a fixed seed reproduces the round trace exactly")
}

// Serve is the skoped daemon's robustness surface: admission control,
// session-table hygiene, store scrubbing, and slow-consumer protection.
// Zero values preserve the pre-admission-control behavior (unbounded
// sessions kept forever) except the scrub interval, which defaults on —
// a periodic read-only verification pass is cheap and the quarantine it
// feeds is what makes a corrupt record heal instead of fail.
type Serve struct {
	MaxSessions        int
	SessionTTL         time.Duration
	ScrubInterval      time.Duration
	StreamWriteTimeout time.Duration
}

// Register installs the serve flags on fs.
func (s *Serve) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.MaxSessions, "max-sessions", 0, "admission control: maximum sessions queued or running at once; excess submissions get 503 + Retry-After (0 = unlimited)")
	fs.DurationVar(&s.SessionTTL, "session-ttl", 0, "garbage-collect finished sessions this long after they reach a terminal state, bounding the session table (0 = keep forever)")
	fs.DurationVar(&s.ScrubInterval, "scrub-interval", 10*time.Minute, "background store scrub period: verify every record, quarantine corrupt ones so the next matching evaluation recomputes them (0 = disabled)")
	fs.DurationVar(&s.StreamWriteTimeout, "stream-write-timeout", 30*time.Second, "per-write deadline on NDJSON result streams: a client that stalls longer than this is disconnected instead of pinning the stream (0 = none)")
}

// Net is the shard worker's network surface: the per-attempt RPC
// deadline applied to every coordinator call. Retried calls get a fresh
// deadline each attempt, so one stalled connection costs one attempt,
// not the whole call.
type Net struct {
	RPCTimeout time.Duration
}

// Register installs the network flags on fs.
func (n *Net) Register(fs *flag.FlagSet) {
	fs.DurationVar(&n.RPCTimeout, "rpc-timeout", 0, "worker mode: deadline per coordinator RPC attempt (0 = 30s default, negative = no deadline)")
}

// Variants expands the collected axes into the variant grid around base.
func (s *Sweep) Variants(base *hw.Machine) ([]*hw.Machine, error) {
	axes, err := s.Axes.Axes()
	if err != nil {
		return nil, err
	}
	grid := explore.Grid{Base: base, Axes: axes}
	return grid.Variants()
}
