package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/skeleton"
)

func buildBET(t *testing.T, src string, input expr.Env) *BET {
	t.Helper()
	prog, err := skeleton.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatalf("bst: %v", err)
	}
	bet, err := Build(context.Background(), tree, input, nil)
	if err != nil {
		t.Fatalf("bet: %v", err)
	}
	return bet
}

func findNodes(b *BET, label string) []*Node {
	var out []*Node
	Walk(b.Root, func(n *Node) bool {
		if n.Label() == label {
			out = append(out, n)
		}
		return true
	})
	return out
}

func TestLoopNotIterated(t *testing.T) {
	// A loop over n iterations must contribute O(1) BET nodes regardless
	// of n — the paper's core efficiency claim.
	src := "def main(n)\nfor i = 0 : n\ncomp flops=2*i name=\"body\"\nend\nend\n"
	small := buildBET(t, src, expr.Env{"n": 10})
	big := buildBET(t, src, expr.Env{"n": 1e9})
	if small.NumNodes() != big.NumNodes() {
		t.Errorf("BET size depends on input: %d vs %d", small.NumNodes(), big.NumNodes())
	}
	loop := findNodes(big, "loop@main:2")[0]
	if loop.Iters != 1e9 {
		t.Errorf("loop iters = %g, want 1e9", loop.Iters)
	}
	// The comp node's ENR must be n (executes once per iteration).
	comp := findNodes(big, "body")[0]
	if comp.ENR != 1e9 {
		t.Errorf("comp ENR = %g, want 1e9", comp.ENR)
	}
}

func TestLoopVarBoundToExpectedValue(t *testing.T) {
	// flops=2*i with i over [0,10) should evaluate at E[i] = 4.5.
	src := "def main(n)\nfor i = 0 : n\ncomp flops=2*i name=\"body\"\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 10})
	comp := findNodes(bet, "body")[0]
	if comp.Work.FLOPs != 9 {
		t.Errorf("FLOPs at expected loop var = %g, want 9", comp.Work.FLOPs)
	}
	// Total work ENR * per-invocation = 10 * 9 = 90 = sum over iterations
	// of 2*i for i=0..9.
	if got := comp.ENR * comp.Work.FLOPs; got != 90 {
		t.Errorf("total flops = %g, want 90", got)
	}
}

func TestLoopWithStepAndNegative(t *testing.T) {
	src := "def main()\nfor i = 0 : 10 : 2\ncomp flops=1 name=\"a\"\nend\nfor j = 10 : 0 : -2\ncomp flops=1 name=\"b\"\nend\nend\n"
	bet := buildBET(t, src, nil)
	a := findNodes(bet, "a")[0]
	if a.ENR != 5 {
		t.Errorf("step-2 loop ENR = %g, want 5", a.ENR)
	}
	b := findNodes(bet, "b")[0]
	if b.ENR != 5 {
		t.Errorf("negative-step loop ENR = %g, want 5", b.ENR)
	}
}

func TestEmptyRangeLoop(t *testing.T) {
	src := "def main(n)\nfor i = 5 : n\ncomp flops=1 name=\"body\"\nend\ncomp flops=1 name=\"after\"\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 3})
	if nodes := findNodes(bet, "body"); len(nodes) != 0 {
		t.Errorf("empty loop body modeled %d times", len(nodes))
	}
	after := findNodes(bet, "after")[0]
	if after.ENR != 1 {
		t.Errorf("statement after empty loop ENR = %g", after.ENR)
	}
}

func TestProbBranchENR(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    if prob=0.3
      comp flops=1 name="hot"
    else
      comp flops=1 name="cold"
    end
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 1000})
	hot := findNodes(bet, "hot")[0]
	cold := findNodes(bet, "cold")[0]
	if math.Abs(hot.ENR-300) > 1e-9 {
		t.Errorf("hot ENR = %g, want 300", hot.ENR)
	}
	if math.Abs(cold.ENR-700) > 1e-9 {
		t.Errorf("cold ENR = %g, want 700", cold.ENR)
	}
}

func TestElifChainProbabilities(t *testing.T) {
	src := `
def main()
  if prob=0.5
    comp flops=1 name="a"
  elif prob=0.5
    comp flops=1 name="b"
  else
    comp flops=1 name="c"
  end
end
`
	bet := buildBET(t, src, nil)
	// a: 0.5; b: 0.5*0.5 = 0.25; c: remaining 0.25.
	for name, want := range map[string]float64{"a": 0.5, "b": 0.25, "c": 0.25} {
		n := findNodes(bet, name)[0]
		if math.Abs(n.ENR-want) > 1e-12 {
			t.Errorf("%s ENR = %g, want %g", name, n.ENR, want)
		}
	}
}

func TestDeterministicCondBranch(t *testing.T) {
	src := `
def main(k)
  if cond = k == 1
    comp flops=1 name="taken"
  else
    comp flops=1 name="nottaken"
  end
end
`
	bet := buildBET(t, src, expr.Env{"k": 1})
	if len(findNodes(bet, "taken")) != 1 {
		t.Error("taken arm not modeled")
	}
	nt := findNodes(bet, "nottaken")
	if len(nt) != 0 {
		t.Errorf("not-taken arm modeled %d times", len(nt))
	}
}

// TestContextForkAtSet reproduces the paper's Figure 2 semantics: a branch
// assigning different values to knob leads to TWO call nodes for foo, each
// with its own probability and context (the rightmost nodes in Fig. 2(c)).
func TestContextForkAtSet(t *testing.T) {
	src := `
def main(n)
  if prob=0.3
    set knob = 1
  else
    set knob = 0
  end
  call foo(knob)
end

def foo(k)
  if cond = k == 1
    comp flops=100 name="heavy"
  else
    comp flops=1 name="light"
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 4})
	calls := findNodes(bet, "call@main:8")
	if len(calls) != 2 {
		t.Fatalf("foo mounted %d times, want 2 (context fork)", len(calls))
	}
	probs := []float64{calls[0].Prob, calls[1].Prob}
	if !(almostEq(probs[0], 0.3) && almostEq(probs[1], 0.7) ||
		almostEq(probs[0], 0.7) && almostEq(probs[1], 0.3)) {
		t.Errorf("call probs = %v, want {0.3, 0.7}", probs)
	}
	heavy := findNodes(bet, "heavy")
	light := findNodes(bet, "light")
	if len(heavy) != 1 || len(light) != 1 {
		t.Fatalf("heavy/light counts = %d/%d, want 1/1", len(heavy), len(light))
	}
	if !almostEq(heavy[0].ENR, 0.3) {
		t.Errorf("heavy ENR = %g, want 0.3", heavy[0].ENR)
	}
	if !almostEq(light[0].ENR, 0.7) {
		t.Errorf("light ENR = %g, want 0.7", light[0].ENR)
	}
}

func TestContextsMergeAfterPureProbBranch(t *testing.T) {
	// A probabilistic branch that does NOT assign variables must not fork
	// contexts: statements after it are modeled once.
	src := `
def main()
  if prob=0.5
    comp flops=1 name="a"
  end
  comp flops=1 name="after"
end
`
	bet := buildBET(t, src, nil)
	after := findNodes(bet, "after")
	if len(after) != 1 {
		t.Errorf("after modeled %d times, want 1", len(after))
	}
	if !almostEq(after[0].ENR, 1) {
		t.Errorf("after ENR = %g, want 1", after[0].ENR)
	}
}

func TestBreakTruncatesIterations(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    comp flops=1 name="body"
    break prob=0.1
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 1000})
	loop := findNodes(bet, "loop@main:3")[0]
	want := (1 - math.Pow(0.9, 1000)) / 0.1 // ~10
	if math.Abs(loop.Iters-want) > 1e-9 {
		t.Errorf("loop iters with break = %g, want %g", loop.Iters, want)
	}
}

func TestBreakNeverFiresKeepsN(t *testing.T) {
	src := "def main(n)\nfor i = 0 : n\ncomp flops=1\nbreak prob=0\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 42})
	loop := findNodes(bet, "loop@main:2")[0]
	if loop.Iters != 42 {
		t.Errorf("p=0 break iters = %g, want 42", loop.Iters)
	}
}

func TestContinueScalesFollowingStatements(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    comp flops=1 name="before"
    continue prob=0.25
    comp flops=1 name="after"
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 100})
	before := findNodes(bet, "before")[0]
	after := findNodes(bet, "after")[0]
	if !almostEq(before.ENR, 100) {
		t.Errorf("before ENR = %g", before.ENR)
	}
	if !almostEq(after.ENR, 75) {
		t.Errorf("after ENR = %g, want 75", after.ENR)
	}
}

func TestReturnKillsFollowing(t *testing.T) {
	src := `
def main()
  call f()
  comp flops=1 name="caller_after"
end

def f()
  comp flops=1 name="pre"
  return prob=0.6
  comp flops=1 name="post"
end
`
	bet := buildBET(t, src, nil)
	post := findNodes(bet, "post")[0]
	if !almostEq(post.ENR, 0.4) {
		t.Errorf("post ENR = %g, want 0.4", post.ENR)
	}
	// Return is absorbed at the call boundary: the caller continues fully.
	ca := findNodes(bet, "caller_after")[0]
	if !almostEq(ca.ENR, 1) {
		t.Errorf("caller_after ENR = %g, want 1", ca.ENR)
	}
}

func TestUnconditionalReturnZeroesRest(t *testing.T) {
	src := "def main()\nreturn\ncomp flops=1 name=\"dead\"\nend\n"
	bet := buildBET(t, src, nil)
	if len(findNodes(bet, "dead")) != 0 {
		t.Error("statement after unconditional return was modeled")
	}
}

func TestReturnInsideLoopTruncatesAndPropagates(t *testing.T) {
	src := `
def main()
  call f()
end

def f()
  for i = 0 : 100
    comp flops=1 name="body"
    return prob=0.5
  end
  comp flops=1 name="tail"
end
`
	bet := buildBET(t, src, nil)
	loop := findNodes(bet, "loop@f:7")[0]
	if math.Abs(loop.Iters-2) > 1e-6 { // (1-0.5^100)/0.5 ~= 2
		t.Errorf("loop iters = %g, want ~2", loop.Iters)
	}
	// Probability the function survives 100 iterations of p=0.5 return is
	// essentially zero: the context is pruned and "tail" is either absent
	// or has negligible ENR.
	if tails := findNodes(bet, "tail"); len(tails) > 0 && tails[0].ENR > 1e-9 {
		t.Errorf("tail ENR = %g, want ~0", tails[0].ENR)
	}
}

func TestCallArgumentBinding(t *testing.T) {
	src := `
def main(n)
  call work(n * 2)
end

def work(m)
  for i = 0 : m
    comp flops=1 name="w"
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 50})
	w := findNodes(bet, "w")[0]
	if w.ENR != 100 {
		t.Errorf("w ENR = %g, want 100", w.ENR)
	}
}

func TestNestedCallsMultiplyENR(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    call mid()
  end
end

def mid()
  for j = 0 : 10
    call leaf()
  end
end

def leaf()
  comp flops=1 name="leafwork"
end
`
	bet := buildBET(t, src, expr.Env{"n": 5})
	leaf := findNodes(bet, "leafwork")[0]
	if leaf.ENR != 50 {
		t.Errorf("leaf ENR = %g, want 50", leaf.ENR)
	}
}

func TestWhileUsesExpectedTripCount(t *testing.T) {
	src := "def main(m)\nwhile iters=m/4 label=\"conv\"\ncomp flops=1 name=\"w\"\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"m": 100})
	w := findNodes(bet, "w")[0]
	if w.ENR != 25 {
		t.Errorf("while body ENR = %g, want 25", w.ENR)
	}
}

func TestLibNode(t *testing.T) {
	src := "def main(n)\nlib exp count=3*n name=\"e\"\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 7})
	e := findNodes(bet, "e")[0]
	if e.LibFunc != "exp" || e.LibCount != 21 {
		t.Errorf("lib node = %q count %g", e.LibFunc, e.LibCount)
	}
}

func TestSizeRatioBounded(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    comp flops=1
    if prob=0.5
      comp flops=2
    end
  end
  call f(n)
end

def f(m)
  for j = 0 : m
    comp flops=j
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 1e6})
	r := bet.SizeRatio()
	if r <= 0 || r > 2 {
		t.Errorf("size ratio = %g, want (0, 2]", r)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := map[string]struct {
		src   string
		input expr.Env
	}{
		"missing entry":      {"def f()\nend\n", nil},
		"unbound loop bound": {"def main()\nfor i = 0 : n\ncomp flops=1\nend\nend\n", nil},
		"unbound cond":       {"def main()\nif cond = k > 0\ncomp flops=1\nend\nend\n", nil},
		"unbound metric":     {"def main()\ncomp flops=z\nend\n", nil},
		"zero step":          {"def main()\nfor i = 0 : 10 : 0\ncomp flops=1\nend\nend\n", nil},
		"unbound set":        {"def main()\nset x = y + 1\nend\n", nil},
		"unbound lib count":  {"def main()\nlib exp count=q\nend\n", nil},
		"undefined call":     {"def main()\ncall nosuch()\nend\n", nil},
	}
	for name, c := range cases {
		prog, err := skeleton.Parse(name, c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		tree, err := bst.Build(prog)
		if err != nil {
			t.Fatalf("%s: bst: %v", name, err)
		}
		if _, err := Build(context.Background(), tree, c.input, nil); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}

func TestPathBackTrace(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n label="outer"
    call f()
  end
end

def f()
  for j = 0 : 10 label="inner"
    comp flops=1 name="spot"
  end
end
`
	bet := buildBET(t, src, expr.Env{"n": 4})
	spot := findNodes(bet, "spot")[0]
	path := spot.Path()
	var labels []string
	for _, n := range path {
		labels = append(labels, n.Label())
	}
	want := []string{"main", "outer", "call@main:4", "inner", "spot"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("path = %v, want %v", labels, want)
	}
}

func TestDumpShowsProbAndIters(t *testing.T) {
	src := "def main(n)\nfor i = 0 : n\nif prob=0.3\ncomp flops=1 name=\"x\"\nend\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 8})
	d := bet.Dump()
	for _, want := range []string{"iters=8", "p=0.3", "func main"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestLeaves(t *testing.T) {
	src := "def main(n)\ncomp flops=1 name=\"a\"\nlib exp count=1 name=\"b\"\nfor i = 0:n\ncomp flops=1 name=\"c\"\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 2})
	leaves := bet.Leaves()
	if len(leaves) != 3 {
		t.Fatalf("got %d leaves, want 3", len(leaves))
	}
}

func TestExpectedIters(t *testing.T) {
	cases := []struct {
		n, p, want float64
	}{
		{100, 0, 100},
		{100, 1, 1},
		{1e9, 0.5, 2},
		{1, 0.5, 1}, // (1-0.5)/0.5 = 1
	}
	for _, c := range cases {
		if got := expectedIters(c.n, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("expectedIters(%g, %g) = %g, want %g", c.n, c.p, got, c.want)
		}
	}
}

// Property: sibling probabilities under any branch node sum to <= 1 + eps,
// and every node probability is within [0, 1].
func TestQuickProbabilityInvariants(t *testing.T) {
	f := func(p1, p2 uint8, nIter uint8) bool {
		pa := float64(p1%100) / 100
		pb := float64(p2%100) / 100
		n := int(nIter%50) + 1
		src := `
def main(n)
  for i = 0 : n
    if prob=` + ftoa(pa) + `
      comp flops=1 name="a"
      break prob=` + ftoa(pb) + `
    elif prob=` + ftoa(pb) + `
      comp flops=2 name="b"
    else
      comp flops=3 name="c"
    end
  end
end
`
		prog, err := skeleton.Parse("q", src)
		if err != nil {
			return false
		}
		tree, err := bst.Build(prog)
		if err != nil {
			return false
		}
		bet, err := Build(context.Background(), tree, expr.Env{"n": float64(n)}, nil)
		if err != nil {
			return false
		}
		ok := true
		Walk(bet.Root, func(nd *Node) bool {
			if nd.Prob < -1e-12 || nd.Prob > 1+1e-12 {
				ok = false
			}
			if nd.Kind() == bst.KindBranch {
				sum := 0.0
				for _, ch := range nd.Children {
					sum += ch.Prob
				}
				if sum > 1+1e-9 {
					ok = false
				}
			}
			if nd.ENR < -1e-12 {
				ok = false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BET size is independent of numeric input scale.
func TestQuickSizeInputInvariance(t *testing.T) {
	src := `
def main(n, m)
  for i = 0 : n
    for j = 0 : m
      comp flops=i+j
      if prob=0.2
        comp flops=1
      end
    end
  end
end
`
	prog := skeleton.MustParse("q", src)
	tree := bst.MustBuild(prog)
	ref, err := Build(context.Background(), tree, expr.Env{"n": 2, "m": 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n, m uint16) bool {
		bet, err := Build(context.Background(), tree, expr.Env{"n": float64(n%1000) + 1, "m": float64(m%1000) + 1}, nil)
		if err != nil {
			return false
		}
		return bet.NumNodes() == ref.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxNodesGuard(t *testing.T) {
	src := "def main(n)\nfor i = 0:n\ncomp flops=1\ncomp flops=1\ncomp flops=1\nend\nend\n"
	prog := skeleton.MustParse("g", src)
	tree := bst.MustBuild(prog)
	if _, err := Build(context.Background(), tree, expr.Env{"n": 5}, &Options{MaxNodes: 2}); err == nil {
		t.Error("MaxNodes guard did not fire")
	}
}

func TestCustomEntry(t *testing.T) {
	src := "def kernel(n)\ncomp flops=n name=\"k\"\nend\n"
	prog := skeleton.MustParse("e", src)
	tree := bst.MustBuild(prog)
	bet, err := Build(context.Background(), tree, expr.Env{"n": 3}, &Options{Entry: "kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if bet.Root.Label() != "kernel" {
		t.Errorf("root = %s", bet.Root.Label())
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func ftoa(v float64) string {
	return expr.Const(v).String()
}

func TestBETDOTWellFormed(t *testing.T) {
	src := "def main(n)\nfor i = 0 : n\nif prob=0.4\ncomp flops=3 name=\"x\"\nend\nend\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 6})
	d := bet.DOT()
	if !strings.HasPrefix(d, "digraph bet {") || !strings.HasSuffix(d, "}\n") {
		t.Errorf("DOT malformed:\n%s", d)
	}
	for _, want := range []string{"->", "x6", "p=0.4", "3 flops"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q:\n%s", want, d)
		}
	}
}

func TestCommNodeInBET(t *testing.T) {
	src := "def main(n)\ncomm bytes=n*8 msgs=2 name=\"halo\"\nend\n"
	bet := buildBET(t, src, expr.Env{"n": 100})
	halo := findNodes(bet, "halo")[0]
	if halo.CommBytes != 800 || halo.CommMsgs != 2 {
		t.Errorf("comm node = %+v", halo)
	}
	if len(bet.Leaves()) != 1 {
		t.Errorf("comm node not a leaf candidate")
	}
}

func TestCommEvalErrors(t *testing.T) {
	src := "def main()\ncomm bytes=q\nend\n"
	prog := skeleton.MustParse("c", src)
	tree := bst.MustBuild(prog)
	if _, err := Build(context.Background(), tree, nil, nil); err == nil {
		t.Error("unbound comm bytes accepted")
	}
}
