// Package core implements the paper's primary contribution: the Bayesian
// Execution Tree (BET), an analytical model of a workload's dynamic
// execution flow built from its Block Skeleton Tree and an input context
// (§IV).
//
// A BET node represents the dynamic execution of a code block under a given
// context — a set of variable bindings plus the conditional probability of
// reaching the node given one execution of its parent. Construction
// conceptually traverses the BST from the entry function, mounting callee
// trees at call sites, WITHOUT iterating loops: a loop contributes a single
// node annotated with its expected iteration count, so model construction
// and analysis time are independent of the input data size.
//
// Probabilistic branch outcomes (from the branch profiler or developer
// hints) fork contexts; contexts with identical bindings re-merge after the
// branch, which keeps the tree close to source size (the paper reports the
// BET averaging 88% of source statements and never exceeding 2x).
package core

import (
	"fmt"
	"sort"
	"strings"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/hw"
)

// Node is one BET node: the dynamic execution of a code block in a context.
type Node struct {
	// ID is unique within the BET, assigned in construction order.
	ID int
	// BST is the block-skeleton-tree node this execution instantiates.
	BST *bst.Node
	// Parent is the enclosing dynamic block (nil at the root).
	Parent *Node
	// Children are the dynamic sub-blocks, in execution order.
	Children []*Node

	// Env is the context bindings under which the block executes (loop
	// variables are bound to their expected value over the iteration
	// range).
	Env expr.Env
	// Prob is the conditional probability of executing this node given one
	// execution of its parent.
	Prob float64
	// Iters is the expected number of iterations (1 for non-loop nodes).
	// For loops with probabilistic break it is the truncated-geometric
	// expectation (1-(1-p)^n)/p.
	Iters float64
	// ENR is the expected number of repetitions of this node over the
	// whole execution (the paper's ENR), filled in by computeENR:
	// ENR = ENR(parent) * Iters(parent) * Prob.
	ENR float64

	// Work is the per-invocation workload of comp nodes (zero otherwise).
	Work hw.BlockWork
	// LibFunc and LibCount describe lib nodes: the library function called
	// and the expected invocation count per execution of the node.
	LibFunc  string
	LibCount float64

	// CommBytes and CommMsgs describe comm nodes: the data volume and
	// message count per execution (multi-node projection extension).
	CommBytes, CommMsgs float64

	// Assumed marks a node whose quantities came from a fallback prior
	// rather than the skeleton/profile (lenient builds only): a missing
	// branch probability, an unevaluable trip count or work expression, or
	// a parser hole. Descendants of an assumed node inherit its
	// uncertainty when confidence is computed.
	Assumed bool
}

// Kind returns the BST kind of the node.
func (n *Node) Kind() bst.Kind { return n.BST.Kind }

// Label returns the BST label of the node.
func (n *Node) Label() string { return n.BST.Label() }

// BlockID returns the stable block identity for profile matching.
func (n *Node) BlockID() string { return n.BST.BlockID() }

// Path returns the chain of nodes from the root to n, inclusive — the
// back-trace used for hot-path extraction (§V-C).
func (n *Node) Path() []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	out := make([]*Node, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// BET is the Bayesian Execution Tree for one workload and input.
type BET struct {
	// Root is the dynamic execution of the entry function.
	Root *Node
	// Input is the initial context the tree was built with.
	Input expr.Env
	// Tree is the BST the BET was built from.
	Tree *bst.Tree

	// Confidence is the measured-vs-assumed coverage of the tree: the
	// fraction of expected dynamic executions (ENR mass over comp, lib,
	// comm and hole leaves) that rests on modeled quantities rather than
	// fallback priors. A strict build is always 1.0; a lenient build drops
	// below 1.0 by exactly the ENR share under assumed nodes.
	Confidence float64
	// Diagnostics records every prior substitution and hole the (lenient)
	// build papered over, deterministically sorted. Empty for strict
	// builds and for lenient builds of intact inputs.
	Diagnostics []guard.Diagnostic

	nodes int
}

// NumNodes returns the number of nodes in the BET.
func (b *BET) NumNodes() int { return b.nodes }

// SizeRatio returns NumNodes divided by the static statement count of the
// skeleton — the paper's §IV-B size metric (average 0.88, bounded by 2).
func (b *BET) SizeRatio() float64 {
	return float64(b.nodes) / float64(b.Tree.Prog.StaticStatements())
}

// Walk visits n and its descendants in pre-order. Returning false prunes
// the subtree.
func Walk(n *Node, visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, visit)
	}
}

// Leaves returns all comp, lib, and comm nodes of the BET in execution
// order — the hot-spot candidates.
func (b *BET) Leaves() []*Node {
	var out []*Node
	Walk(b.Root, func(n *Node) bool {
		switch n.Kind() {
		case bst.KindComp, bst.KindLib, bst.KindComm:
			out = append(out, n)
		}
		return true
	})
	return out
}

// Dump renders the BET structure with probabilities, iteration counts and
// context values — the Figure 2(c) view.
func (b *BET) Dump() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		ind := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%s%s %s p=%.3g", ind, n.Kind(), n.Label(), n.Prob)
		if n.Kind() == bst.KindLoop || n.Kind() == bst.KindWhile {
			fmt.Fprintf(&sb, " iters=%.4g", n.Iters)
		}
		if n.ENR != 0 {
			fmt.Fprintf(&sb, " enr=%.4g", n.ENR)
		}
		if len(n.Env) > 0 && depth <= 3 {
			fmt.Fprintf(&sb, " ctx=%s", expr.FormatEnv(n.Env))
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(b.Root, 0)
	return sb.String()
}

// DOT renders the BET in Graphviz dot syntax: loops annotated with their
// expected iteration counts, edges with conditional probabilities — a
// visual Figure 2(c).
func (b *BET) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph bet {\n  node [shape=box, fontsize=10];\n")
	var rec func(n *Node)
	rec = func(n *Node) {
		label := fmt.Sprintf("%s %s", n.Kind(), n.Label())
		switch n.Kind() {
		case bst.KindLoop, bst.KindWhile:
			label += fmt.Sprintf("\\nx%.4g", n.Iters)
		case bst.KindComp:
			label += fmt.Sprintf("\\n%g flops", n.Work.FLOPs)
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, label)
		for _, c := range n.Children {
			edge := ""
			if c.Prob != 1 {
				edge = fmt.Sprintf(" [label=\"p=%.3g\"]", c.Prob)
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", n.ID, c.ID, edge)
			rec(c)
		}
	}
	rec(b.Root)
	sb.WriteString("}\n")
	return sb.String()
}

// envKey returns a canonical string for a context's bindings, used to merge
// equivalent contexts after branches.
func envKey(env expr.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%g;", k, env[k])
	}
	return sb.String()
}

// computeENR fills in Node.ENR over the whole tree:
// ENR(root) = 1; ENR(child) = ENR(parent) * Iters(parent) * Prob(child).
func (b *BET) computeENR() {
	var rec func(n *Node, enr float64)
	rec = func(n *Node, enr float64) {
		n.ENR = enr
		for _, c := range n.Children {
			rec(c, enr*n.Iters*c.Prob)
		}
	}
	b.Root.Prob = 1
	rec(b.Root, 1)
}

// computeConfidence fills in BET.Confidence after computeENR: one minus
// the ENR-weighted share of leaf executions (comp/lib/comm/hole) that sit
// at or below an assumed node. Runs for strict builds too, where no node
// is assumed and the result is exactly 1.0 — the score is derived, never
// perturbing the modeled times.
func (b *BET) computeConfidence() {
	var total, assumed float64
	var rec func(n *Node, tainted bool)
	rec = func(n *Node, tainted bool) {
		tainted = tainted || n.Assumed
		switch n.Kind() {
		case bst.KindComp, bst.KindLib, bst.KindComm, bst.KindHole:
			total += n.ENR
			if tainted {
				assumed += n.ENR
			}
		case bst.KindCall:
			// A childless call carries no leaves to weigh, yet it stands
			// for real work: an undefined callee modeled as empty (lenient
			// fallback) or a genuinely empty function. Count the call site
			// itself so an assumed-empty call lowers the score instead of
			// vanishing from the denominator.
			if len(n.Children) == 0 {
				total += n.ENR
				if tainted {
					assumed += n.ENR
				}
			}
		}
		for _, c := range n.Children {
			rec(c, tainted)
		}
	}
	rec(b.Root, false)
	switch {
	case total > 0:
		b.Confidence = (total - assumed) / total
	case len(b.Diagnostics) == 0:
		// Nothing to model and nothing papered over: fully confident.
		b.Confidence = 1
	default:
		// All modelable content was lost to recovery.
		b.Confidence = 0
	}
}
