package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/skeleton"
)

// TestQuickBETMatchesMonteCarlo validates the full §IV statistical
// semantics on randomly generated skeletons: for every leaf block, the
// BET's analytical ENR must match the Monte Carlo sampler's mean execution
// count within sampling noise. The generator covers nested loops,
// probabilistic and deterministic branches, elif chains, probabilistic
// break/continue/return, context-forking set statements, and calls.
//
// The expectations are exact in theory (the truncated-geometric iteration
// formula and the post-break scaling both equal the process means), so the
// tolerance only covers Monte Carlo noise at 3000 runs.
func TestQuickBETMatchesMonteCarlo(t *testing.T) {
	f := func(seed uint32) bool {
		src := genSkeleton(uint64(seed))
		prog, err := skeleton.Parse("gen", src)
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, src)
			return false
		}
		if err := skeleton.Validate(prog); err != nil {
			t.Logf("seed %d: validate: %v\n%s", seed, err, src)
			return false
		}
		tree, err := bst.Build(prog)
		if err != nil {
			t.Logf("seed %d: bst: %v", seed, err)
			return false
		}
		input := expr.Env{"n": 6}
		bet, err := Build(context.Background(), tree, input, nil)
		if err != nil {
			t.Logf("seed %d: bet: %v\n%s", seed, err, src)
			return false
		}
		mc, err := MonteCarlo(tree, input, &MCOptions{Runs: 4000, Seed: uint64(seed)*7 + 3})
		if err != nil {
			t.Logf("seed %d: mc: %v\n%s", seed, err, src)
			return false
		}
		enr := enrByBlock(bet)
		for id, want := range mc {
			got := enr[id]
			// 4000 runs: occurrences of deeply nested blocks cluster (one
			// rare branch admits many executions), inflating the sampling
			// variance well beyond Bernoulli noise, so the tolerance is
			// generous. Genuine modeling errors show up as order-of-
			// magnitude ratios (the competing-risk return bug this test
			// caught was 97x off), far beyond 15%.
			if RelErr(got, want, 0.25) > 0.15 {
				t.Logf("seed %d: %s: ENR %.4f vs MC %.4f\n%s\nbet:\n%s",
					seed, id, got, want, src, bet.Dump())
				return false
			}
		}
		// Nothing modeled as hot that never executes (and vice versa).
		for id, got := range enr {
			if _, ok := mc[id]; !ok && got > 0.05 {
				t.Logf("seed %d: %s modeled (%.4f) but never sampled\n%s", seed, id, got, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// genSkeleton emits a random skeleton program with one helper function.
func genSkeleton(seed uint64) string {
	r := &mclcg{state: seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
	var b strings.Builder
	b.WriteString("def main(n)\n")
	g := &skelGen{r: r, b: &b, nextName: 0, allowCall: true}
	g.block(1, 0)
	b.WriteString("end\n\ndef helper(m)\n")
	g.allowCall = false // helper must not call helper (no recursion)
	g.block(1, 0)
	b.WriteString("end\n")
	return b.String()
}

type mclcg struct{ state uint64 }

func (l *mclcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 11
}

func (l *mclcg) intn(n int) int     { return int(l.next() % uint64(n)) }
func (l *mclcg) prob() float64      { return float64(l.intn(80)+10) / 100 }
func (l *mclcg) smallProb() float64 { return float64(l.intn(25)+5) / 100 }

type skelGen struct {
	r         *mclcg
	b         *strings.Builder
	nextName  int
	allowCall bool
}

func (g *skelGen) name() string {
	g.nextName++
	return fmt.Sprintf("blk%d", g.nextName)
}

// block emits 1-3 statements. loopDepth gates break/continue.
func (g *skelGen) block(depth, loopDepth int) {
	ind := strings.Repeat("  ", depth)
	n := 1 + g.r.intn(3)
	for s := 0; s < n; s++ {
		switch c := g.r.intn(8); {
		case c <= 1 && depth < 4:
			// Counted loop (constant or n bound).
			bound := fmt.Sprintf("%d", 2+g.r.intn(5))
			if g.r.intn(2) == 0 {
				bound = "n"
			}
			fmt.Fprintf(g.b, "%sfor v%d = 0 : %s\n", ind, depth, bound)
			g.block(depth+1, loopDepth+1)
			// Occasionally a probabilistic break or continue at body end.
			switch g.r.intn(4) {
			case 0:
				fmt.Fprintf(g.b, "%s  break prob=%.2f\n", ind, g.r.smallProb())
			case 1:
				fmt.Fprintf(g.b, "%s  continue prob=%.2f\n", ind, g.r.prob())
			}
			fmt.Fprintf(g.b, "%send\n", ind)
		case c == 2 && depth < 4:
			// Probabilistic branch, possibly elif/else.
			fmt.Fprintf(g.b, "%sif prob=%.2f\n", ind, g.r.prob())
			g.block(depth+1, loopDepth)
			if g.r.intn(2) == 0 {
				fmt.Fprintf(g.b, "%selif prob=%.2f\n", ind, g.r.prob())
				g.block(depth+1, loopDepth)
			}
			if g.r.intn(2) == 0 {
				fmt.Fprintf(g.b, "%selse\n", ind)
				g.block(depth+1, loopDepth)
			}
			fmt.Fprintf(g.b, "%send\n", ind)
		case c == 3 && depth < 4:
			// Context fork: set knob under a branch, then branch on it.
			fmt.Fprintf(g.b, "%sif prob=%.2f\n", ind, g.r.prob())
			fmt.Fprintf(g.b, "%s  set knob = 1\n", ind)
			fmt.Fprintf(g.b, "%selse\n", ind)
			fmt.Fprintf(g.b, "%s  set knob = 0\n", ind)
			fmt.Fprintf(g.b, "%send\n", ind)
			fmt.Fprintf(g.b, "%sif cond = knob == 1\n", ind)
			fmt.Fprintf(g.b, "%s  comp flops=2 name=%q\n", ind, g.name())
			fmt.Fprintf(g.b, "%send\n", ind)
		case c == 4 && depth < 3 && g.allowCall:
			fmt.Fprintf(g.b, "%scall helper(n)\n", ind)
		case c == 5:
			fmt.Fprintf(g.b, "%sreturn prob=%.2f\n", ind, g.r.smallProb())
		default:
			fmt.Fprintf(g.b, "%scomp flops=%d loads=%d name=%q\n",
				ind, 1+g.r.intn(9), g.r.intn(4), g.name())
		}
	}
	// Guarantee at least one observable leaf per block.
	fmt.Fprintf(g.b, "%scomp flops=1 name=%q\n", ind, g.name())
}
