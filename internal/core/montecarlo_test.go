package core

import (
	"context"
	"testing"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/skeleton"
)

// enrByBlock sums BET node ENR per BlockID for comparison with Monte Carlo
// mean execution counts.
func enrByBlock(bet *BET) map[string]float64 {
	out := map[string]float64{}
	for _, n := range bet.Leaves() {
		out[n.BlockID()] += n.ENR
	}
	return out
}

// runMC builds both the BET and the Monte Carlo reference for one skeleton
// and asserts that every leaf block's ENR matches the sampled mean within
// tolerance (Monte Carlo noise at 4000 runs is ~1.6%/sqrt(count)).
func assertBETMatchesMC(t *testing.T, src string, input expr.Env, relTol float64) {
	t.Helper()
	prog := skeleton.MustParse("mc", src)
	tree := bst.MustBuild(prog)
	bet, err := Build(context.Background(), tree, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(tree, input, &MCOptions{Runs: 4000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	enr := enrByBlock(bet)
	for id, want := range mc {
		got := enr[id]
		if RelErr(got, want, 0.05) > relTol {
			t.Errorf("%s: BET ENR %.4f vs Monte Carlo %.4f", id, got, want)
		}
	}
	for id := range enr {
		if _, ok := mc[id]; !ok && enr[id] > 1e-6 {
			t.Errorf("%s: modeled (ENR %.4f) but never sampled", id, enr[id])
		}
	}
}

func TestMCSimpleLoopExact(t *testing.T) {
	assertBETMatchesMC(t, `
def main(n)
  for i = 0 : n
    comp flops=1 name="body"
  end
end
`, expr.Env{"n": 25}, 1e-9)
}

func TestMCBranchProbabilities(t *testing.T) {
	assertBETMatchesMC(t, `
def main(n)
  for i = 0 : n
    if prob=0.3
      comp flops=1 name="a"
    elif prob=0.5
      comp flops=1 name="b"
    else
      comp flops=1 name="c"
    end
  end
end
`, expr.Env{"n": 50}, 0.05)
}

func TestMCBreakGeometric(t *testing.T) {
	// The reconstructed truncated-geometric expectation must match the
	// sampled loop behaviour.
	assertBETMatchesMC(t, `
def main(n)
  for i = 0 : n
    comp flops=1 name="body"
    break prob=0.15
  end
  comp flops=1 name="after"
end
`, expr.Env{"n": 60}, 0.05)
}

func TestMCContinueScaling(t *testing.T) {
	assertBETMatchesMC(t, `
def main(n)
  for i = 0 : n
    comp flops=1 name="pre"
    continue prob=0.4
    comp flops=1 name="post"
  end
end
`, expr.Env{"n": 40}, 0.05)
}

func TestMCReturnPromotion(t *testing.T) {
	assertBETMatchesMC(t, `
def main(n)
  call f(n)
  comp flops=1 name="caller_after"
end

def f(n)
  for i = 0 : n
    comp flops=1 name="body"
    return prob=0.1
  end
  comp flops=1 name="tail"
end
`, expr.Env{"n": 30}, 0.08)
}

func TestMCContextFork(t *testing.T) {
	// The Figure-2 pattern: a branch assigning knob drives a deterministic
	// branch in the callee.
	assertBETMatchesMC(t, `
def main(n)
  for i = 0 : n
    if prob=0.25
      set knob = 1
    else
      set knob = 0
    end
    call foo(knob)
  end
end

def foo(k)
  if cond = k == 1
    comp flops=1 name="heavy"
  else
    comp flops=1 name="light"
  end
end
`, expr.Env{"n": 40}, 0.05)
}

func TestMCWhileFractionalIters(t *testing.T) {
	assertBETMatchesMC(t, `
def main(m)
  while iters=m/4 label="conv"
    comp flops=1 name="w"
  end
end
`, expr.Env{"m": 10}, 0.05) // 2.5 expected iterations
}

func TestMCCommAndLib(t *testing.T) {
	assertBETMatchesMC(t, `
def main(n)
  for t = 0 : n
    lib exp count=2 name="e"
    comm bytes=64 msgs=1 name="x"
  end
end
`, expr.Env{"n": 12}, 1e-9)
}

func TestMCPedagogicalWorkload(t *testing.T) {
	// The full Figure-2 example: every statistical feature at once.
	src := `
def main(n, m)
  set knob = 0
  for i = 0 : n label="outer"
    comp flops=6 loads=3 stores=1 name="prep"
    if prob=0.3
      set knob = 1
    else
      set knob = 0
    end
    call foo(i, knob)
  end
  while iters=m/4 label="conv"
    comp flops=8*m loads=3*m name="solve"
    break prob=0.02
  end
  lib exp count=n name="exptail"
end

def foo(x, k)
  if cond = k == 1
    comp flops=40*x loads=2*x stores=1 name="heavy"
  else
    comp flops=12 loads=2 name="light"
  end
end
`
	assertBETMatchesMC(t, src, expr.Env{"n": 24, "m": 40}, 0.08)
}

func TestMCErrors(t *testing.T) {
	prog := skeleton.MustParse("e", "def main()\nfor i = 0 : q\ncomp flops=1\nend\nend\n")
	tree := bst.MustBuild(prog)
	if _, err := MonteCarlo(tree, nil, nil); err == nil {
		t.Error("unbound loop bound accepted")
	}
	prog2 := skeleton.MustParse("e2", "def main()\nwhile iters=1000000\ncomp flops=1\nend\nend\n")
	tree2 := bst.MustBuild(prog2)
	if _, err := MonteCarlo(tree2, nil, &MCOptions{Runs: 1000, MaxSteps: 1000}); err == nil {
		t.Error("step budget not enforced")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(1, 1, 0.1) != 0 {
		t.Error("identical values")
	}
	if RelErr(0.0, 0.001, 0.05) > 0.05 {
		t.Error("floor not applied")
	}
}
