package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/skeleton"
)

// cancelSrc nests calls under loops so BET construction enters body() many
// times, giving cancellation checks plenty of chances to fire.
const cancelSrc = `
def main(n)
  for i = 0 : n label="outer"
    call work(n)
  end
end

def work(n)
  for j = 0 : n label="inner"
    comp flops=j name="k"
    if prob=0.5
      comp flops=1 name="b"
    end
  end
end
`

func cancelTree(t *testing.T) *bst.Tree {
	t.Helper()
	prog, err := skeleton.Parse("cancel", cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildPreCanceledContext(t *testing.T) {
	tree := cancelTree(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bet, err := Build(ctx, tree, expr.Env{"n": 10}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Build = %v, want wrapped context.Canceled", err)
	}
	if bet != nil {
		t.Error("partial BET returned from canceled build")
	}
}

// TestBuildCancelMidBuild cancels from inside the builder's per-body check
// (via the core.body fault point) and verifies construction stops promptly
// with the partial tree discarded.
func TestBuildCancelMidBuild(t *testing.T) {
	tree := cancelTree(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hits := 0
	disarm := guard.Arm("core.body", func(string) {
		hits++
		if hits == 3 { // let construction make real progress first
			cancel()
		}
	})
	t.Cleanup(disarm)
	start := time.Now()
	bet, err := Build(ctx, tree, expr.Env{"n": 10}, nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled build took %v to stop", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Build = %v, want wrapped context.Canceled", err)
	}
	if bet != nil {
		t.Error("partial BET returned from canceled build")
	}
	if hits < 3 {
		t.Errorf("fault point hit %d times; cancellation did not happen mid-build", hits)
	}
}

func TestBuildDeadlineExceeded(t *testing.T) {
	tree := cancelTree(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := Build(ctx, tree, expr.Env{"n": 10}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Build = %v, want wrapped context.DeadlineExceeded", err)
	}
}
