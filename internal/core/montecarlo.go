package core

import (
	"fmt"
	"math"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/skeleton"
)

// MCOptions configure Monte Carlo skeleton execution.
type MCOptions struct {
	// Runs is the number of sampled executions (default 1000).
	Runs int
	// Seed seeds the sampler (default 1).
	Seed uint64
	// MaxSteps bounds the total work across all runs (default 1 << 26).
	MaxSteps int64
	// Entry is the entry function (default "main").
	Entry string
}

// MonteCarlo executes the skeleton stochastically: loops actually iterate,
// probabilistic branches and jumps are sampled, and deterministic
// conditions are evaluated — the ground-truth semantics the Bayesian
// Execution Tree approximates analytically. It returns the mean execution
// count of every comp/lib/comm block per run, keyed by BlockID.
//
// This is the reference implementation used to validate the BET's
// statistical formulas (expected iterations under break, probability
// promotion for return/continue, context forking): the BET's ENR must
// converge to these means. It costs O(runs x dynamic statements), the very
// cost the BET exists to avoid, so it is a verification tool, not an
// analysis path.
func MonteCarlo(tree *bst.Tree, input expr.Env, opts *MCOptions) (map[string]float64, error) {
	o := MCOptions{Runs: 1000, Seed: 1, MaxSteps: 1 << 26, Entry: "main"}
	if opts != nil {
		if opts.Runs > 0 {
			o.Runs = opts.Runs
		}
		if opts.Seed != 0 {
			o.Seed = opts.Seed
		}
		if opts.MaxSteps > 0 {
			o.MaxSteps = opts.MaxSteps
		}
		if opts.Entry != "" {
			o.Entry = opts.Entry
		}
	}
	entry, err := tree.Func(o.Entry)
	if err != nil {
		return nil, err
	}
	if err := skeleton.ValidateEntry(tree.Prog, o.Entry); err != nil {
		return nil, err
	}
	s := &sampler{tree: tree, input: input, rng: o.Seed, maxSteps: o.MaxSteps,
		counts: map[string]float64{}}
	for r := 0; r < o.Runs; r++ {
		env := input.Clone()
		if _, err := s.runBody(entry.Children, env); err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(s.counts))
	for id, c := range s.counts {
		out[id] = c / float64(o.Runs)
	}
	return out, nil
}

// mcControl is the sampled non-local outcome of a statement.
type mcControl int

const (
	mcNone mcControl = iota
	mcBreak
	mcContinue
	mcReturn
)

type sampler struct {
	tree     *bst.Tree
	input    expr.Env
	rng      uint64
	steps    int64
	maxSteps int64
	counts   map[string]float64
}

func (s *sampler) rand() float64 {
	x := s.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

func (s *sampler) errf(n *bst.Node, format string, args ...any) error {
	return fmt.Errorf("montecarlo: %s:%d (%s): %s",
		s.tree.Prog.Source, n.Line, n.Label(), fmt.Sprintf(format, args...))
}

func (s *sampler) tick(n *bst.Node) error {
	s.steps++
	if s.steps > s.maxSteps {
		return s.errf(n, "step budget exceeded (%d); shrink the input or runs", s.maxSteps)
	}
	return nil
}

func (s *sampler) runBody(stmts []*bst.Node, env expr.Env) (mcControl, error) {
	for _, sn := range stmts {
		ctrl, err := s.runStmt(sn, env)
		if err != nil || ctrl != mcNone {
			return ctrl, err
		}
	}
	return mcNone, nil
}

func (s *sampler) runStmt(sn *bst.Node, env expr.Env) (mcControl, error) {
	if err := s.tick(sn); err != nil {
		return mcNone, err
	}
	switch sn.Kind {
	case bst.KindComp, bst.KindLib, bst.KindComm:
		s.counts[sn.BlockID()]++
		return mcNone, nil

	case bst.KindVar:
		return mcNone, nil

	case bst.KindSet:
		st := sn.Stmt.(*skeleton.Set)
		v, err := st.Value.Eval(env)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		env[st.Name] = v
		return mcNone, nil

	case bst.KindLoop:
		lp := sn.Stmt.(*skeleton.Loop)
		from, err := lp.From.Eval(env)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		to, err := lp.To.Eval(env)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		step := 1.0
		if lp.Step != nil {
			if step, err = lp.Step.Eval(env); err != nil {
				return mcNone, s.errf(sn, "%v", err)
			}
		}
		if step == 0 {
			return mcNone, s.errf(sn, "zero step")
		}
		saved, had := env[lp.Var]
		for i := from; (step > 0 && i < to) || (step < 0 && i > to); i += step {
			if err := s.tick(sn); err != nil {
				return mcNone, err
			}
			env[lp.Var] = i
			ctrl, err := s.runBody(sn.Children, env)
			if err != nil {
				return mcNone, err
			}
			if ctrl == mcBreak {
				break
			}
			if ctrl == mcReturn {
				s.restore(env, lp.Var, saved, had)
				return mcReturn, nil
			}
		}
		s.restore(env, lp.Var, saved, had)
		return mcNone, nil

	case bst.KindWhile:
		wh := sn.Stmt.(*skeleton.While)
		iters, err := wh.Iters.Eval(env)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		// A while's statistical trip count may be fractional: sample the
		// remainder as a Bernoulli extra iteration.
		n := int(iters)
		if s.rand() < iters-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			if err := s.tick(sn); err != nil {
				return mcNone, err
			}
			ctrl, err := s.runBody(sn.Children, env)
			if err != nil {
				return mcNone, err
			}
			if ctrl == mcBreak {
				break
			}
			if ctrl == mcReturn {
				return mcReturn, nil
			}
		}
		return mcNone, nil

	case bst.KindBranch:
		// Arms are tried in order; a CondProb p is the conditional
		// fall-through probability given that no earlier arm was taken —
		// exactly the BET's elif-chain semantics.
		for _, arm := range sn.Children {
			var take bool
			switch arm.Kind {
			case bst.KindCase:
				cond := arm.Case.Cond
				switch cond.Kind {
				case skeleton.CondExpr:
					v, err := cond.X.Eval(env)
					if err != nil {
						return mcNone, s.errf(arm, "%v", err)
					}
					take = v != 0
				case skeleton.CondProb:
					p, err := cond.X.Eval(env)
					if err != nil {
						return mcNone, s.errf(arm, "%v", err)
					}
					take = s.rand() < clamp01(p)
				}
			case bst.KindElse:
				take = true
			}
			if take {
				return s.runBody(arm.Children, env)
			}
		}
		return mcNone, nil

	case bst.KindCall:
		st := sn.Stmt.(*skeleton.Call)
		calleeRoot, err := s.tree.Func(st.Func)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		calleeEnv := s.input.Clone()
		for i, param := range calleeRoot.Fn.Params {
			v, err := st.Args[i].Eval(env)
			if err != nil {
				return mcNone, s.errf(sn, "%v", err)
			}
			calleeEnv[param] = v
		}
		if _, err := s.runBody(calleeRoot.Children, calleeEnv); err != nil {
			return mcNone, err
		}
		return mcNone, nil

	case bst.KindReturn:
		return s.jump(sn, env, mcReturn)
	case bst.KindBreak:
		return s.jump(sn, env, mcBreak)
	case bst.KindContinue:
		return s.jump(sn, env, mcContinue)
	}
	return mcNone, s.errf(sn, "unhandled kind %s", sn.Kind)
}

func (s *sampler) jump(sn *bst.Node, env expr.Env, ctrl mcControl) (mcControl, error) {
	var probX expr.Expr
	switch st := sn.Stmt.(type) {
	case *skeleton.Return:
		probX = st.Prob
	case *skeleton.Break:
		probX = st.Prob
	case *skeleton.Continue:
		probX = st.Prob
	}
	p := 1.0
	if probX != nil {
		v, err := probX.Eval(env)
		if err != nil {
			return mcNone, s.errf(sn, "%v", err)
		}
		p = clamp01(v)
	}
	if s.rand() < p {
		return ctrl, nil
	}
	return mcNone, nil
}

func (s *sampler) restore(env expr.Env, name string, saved float64, had bool) {
	if had {
		env[name] = saved
	} else {
		delete(env, name)
	}
}

// RelErr is a helper for comparing Monte Carlo means against analytical
// expectations: |a-b| / max(|b|, floor).
func RelErr(a, b, floor float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(math.Abs(b), floor)
	return d / den
}
