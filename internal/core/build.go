package core

import (
	"context"
	"fmt"
	"math"

	"skope/internal/bst"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// Options configure BET construction.
type Options struct {
	// Entry is the entry function name (default "main").
	Entry string
	// MaxContexts bounds the number of simultaneously live contexts per
	// statement; exceeding it is an error (default 256, matching
	// guard.Default). The paper's bound on context blowup is 2^B for B
	// independent branches; real workloads stay near 1.
	MaxContexts int
	// MaxNodes bounds the BET size (default 1 << 20, matching
	// guard.Default).
	MaxNodes int
	// Lenient substitutes paper-motivated priors for missing or corrupt
	// quantities — a uniform 0.5 for unevaluable branch probabilities, one
	// iteration for unevaluable trip counts, zero work for unevaluable
	// metrics, parser holes modeled as empty blocks — recording each
	// substitution as a diagnostic and marking the affected nodes assumed,
	// instead of failing the build. Resource limits (MaxContexts,
	// MaxNodes), cancellation, a missing entry function, and recursion
	// remain fatal in both modes.
	Lenient bool
}

func (o *Options) withDefaults() Options {
	def := guard.Default()
	out := Options{Entry: "main", MaxContexts: def.MaxContexts, MaxNodes: def.MaxBETNodes}
	if o == nil {
		return out
	}
	if o.Entry != "" {
		out.Entry = o.Entry
	}
	if o.MaxContexts > 0 {
		out.MaxContexts = o.MaxContexts
	}
	if o.MaxNodes > 0 {
		out.MaxNodes = o.MaxNodes
	}
	out.Lenient = o.Lenient
	return out
}

// ctxCheckInterval is how many BET nodes are built between context
// deadline checks — fine enough that cancellation lands within
// microseconds, coarse enough to keep the check off the profile.
const ctxCheckInterval = 1024

// Build constructs the Bayesian Execution Tree for the program underlying
// tree, with the given input bindings (array dimensions, developer hints).
// ctx bounds the construction: cancellation or a deadline is honored at
// statement granularity, so even pathologically large trees stop promptly.
func Build(ctx context.Context, tree *bst.Tree, input expr.Env, opts *Options) (*BET, error) {
	o := opts.withDefaults()
	entry, err := tree.Func(o.Entry)
	if err != nil {
		return nil, err
	}
	var preDiags []guard.Diagnostic
	if o.Lenient {
		ds, err := skeleton.ValidateLenient(tree.Prog, o.Entry)
		if err != nil {
			return nil, err
		}
		preDiags = ds
	} else if err := skeleton.ValidateEntry(tree.Prog, o.Entry); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bet: %s: %w", tree.Prog.Source, err)
	}
	b := &builder{
		bet:   &BET{Input: input.Clone(), Tree: tree},
		opts:  o,
		input: input.Clone(),
		ctx:   ctx,
		diags: preDiags,
	}
	root := b.newNode(entry, nil, b.input.Clone(), 1)
	// The entry function executes once with the full input context.
	if _, _, err := b.body(root, entry.Children, []ectx{{env: b.input.Clone(), prob: 1}}); err != nil {
		return nil, err
	}
	b.bet.Root = root
	b.bet.nodes = b.nodes
	b.bet.Diagnostics = b.diags
	guard.SortDiagnostics(b.bet.Diagnostics)
	b.bet.computeENR()
	b.bet.computeConfidence()
	return b.bet, nil
}

// MustBuild builds a BET and panics on error; for fixtures and examples.
func MustBuild(tree *bst.Tree, input expr.Env, opts *Options) *BET {
	bet, err := Build(context.Background(), tree, input, opts)
	if err != nil {
		panic(err)
	}
	return bet
}

// ectx is a live execution context during construction: bindings plus the
// probability of being in this context, relative to one execution of the
// node whose body is being processed.
type ectx struct {
	env  expr.Env
	prob float64
}

// escape accumulates probability mass diverted out of a statement sequence
// by return/break/continue, in the same relative scale as the input ctxs.
type escape struct {
	ret, brk, cont float64
}

const probEps = 1e-12

type builder struct {
	bet     *BET
	opts    Options
	input   expr.Env
	nodes   int
	ctx     context.Context
	checked int // node count at the last context-deadline check

	// diags accumulates lenient-mode prior substitutions; seen dedupes
	// them (the same statement is revisited once per live context and per
	// inlined call site).
	diags []guard.Diagnostic
	seen  map[string]bool
}

// assume records one lenient-mode prior substitution: the node (when one
// exists) is marked Assumed and a deduplicated diagnostic is appended.
func (b *builder) assume(sev guard.Severity, sn *bst.Node, n *Node, code, format string, args ...any) {
	if n != nil {
		n.Assumed = true
	}
	d := guard.Diagnostic{
		Severity: sev, Stage: "bet", Code: code, BlockID: sn.BlockID(),
		Message: fmt.Sprintf("%s:%d (%s): %s",
			b.bet.Tree.Prog.Source, sn.Line, sn.Label(), fmt.Sprintf(format, args...)),
	}
	key := d.String()
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.diags = append(b.diags, d)
}

// checkCtx honors cancellation at block granularity plus every
// ctxCheckInterval nodes within huge flat bodies. The guard.Hit call is a
// fault-injection point (no-op unless a test arms "core.body") that lets
// tests cancel or fail mid-construction deterministically.
func (b *builder) checkCtx(where string) error {
	guard.Hit("core.body", where)
	if err := b.ctx.Err(); err != nil {
		return fmt.Errorf("bet: %s (%s): %w", b.bet.Tree.Prog.Source, where, err)
	}
	b.checked = b.nodes
	return nil
}

func (b *builder) newNode(bn *bst.Node, parent *Node, env expr.Env, prob float64) *Node {
	b.nodes++
	n := &Node{ID: b.nodes, BST: bn, Parent: parent, Env: env, Prob: prob, Iters: 1}
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

func (b *builder) errf(bn *bst.Node, format string, args ...any) error {
	return fmt.Errorf("bet: %s:%d (%s): %s",
		b.bet.Tree.Prog.Source, bn.Line, bn.Label(), fmt.Sprintf(format, args...))
}

// body models the execution of a statement list under parent, starting from
// the given contexts. It returns the continuation contexts (those that fall
// through the end of the list) and the escaped probability mass.
func (b *builder) body(parent *Node, stmts []*bst.Node, ctxs []ectx) ([]ectx, escape, error) {
	var esc escape
	if err := b.checkCtx(parent.BST.Label()); err != nil {
		return nil, esc, err
	}
	live := ctxs
	for _, sn := range stmts {
		if b.nodes > b.opts.MaxNodes {
			return nil, esc, fmt.Errorf("bet: %s:%d (%s): %w",
				b.bet.Tree.Prog.Source, sn.Line, sn.Label(),
				guard.Exceeded("BET nodes", b.nodes, b.opts.MaxNodes))
		}
		if b.nodes-b.checked >= ctxCheckInterval {
			if err := b.checkCtx(sn.Label()); err != nil {
				return nil, esc, err
			}
		}
		live = prune(live)
		if len(live) == 0 {
			break
		}
		if len(live) > b.opts.MaxContexts {
			return nil, esc, fmt.Errorf("bet: %s:%d (%s): context explosion: %w",
				b.bet.Tree.Prog.Source, sn.Line, sn.Label(),
				guard.Exceeded("live contexts", len(live), b.opts.MaxContexts))
		}
		var err error
		live, err = b.stmt(parent, sn, live, &esc)
		if err != nil {
			return nil, esc, err
		}
	}
	return prune(live), esc, nil
}

// stmt models one statement under every live context, returning the updated
// context set.
func (b *builder) stmt(parent *Node, sn *bst.Node, live []ectx, esc *escape) ([]ectx, error) {
	switch sn.Kind {
	case bst.KindComp:
		comp := sn.Stmt.(*skeleton.Comp)
		for _, c := range live {
			w, err := evalWork(comp.M, c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "%v", err)
				}
				w = hw.BlockWork{Vec: 1}
			}
			n := b.newNode(sn, parent, c.env, c.prob)
			n.Work = w
			if err != nil {
				b.assume(guard.SevWarn, sn, n, "assumed-work", "%v; assuming zero work", err)
			}
		}
		return live, nil

	case bst.KindLib:
		lib := sn.Stmt.(*skeleton.Lib)
		for _, c := range live {
			cnt, err := evalNonNeg(lib.Count, c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "lib count: %v", err)
				}
				cnt = 1
			}
			n := b.newNode(sn, parent, c.env, c.prob)
			n.LibFunc = lib.Func
			n.LibCount = cnt
			if err != nil {
				b.assume(guard.SevWarn, sn, n, "assumed-lib-count", "lib count: %v; assuming 1 invocation", err)
			}
		}
		return live, nil

	case bst.KindComm:
		comm := sn.Stmt.(*skeleton.Comm)
		for _, c := range live {
			bytes, berr := evalNonNeg(comm.Bytes, c.env)
			if berr != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "comm bytes: %v", berr)
				}
				bytes = 0
			}
			msgs, merr := evalNonNeg(comm.Msgs, c.env)
			if merr != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "comm msgs: %v", merr)
				}
				msgs = 1
			}
			n := b.newNode(sn, parent, c.env, c.prob)
			n.CommBytes = bytes
			n.CommMsgs = msgs
			if berr != nil {
				b.assume(guard.SevWarn, sn, n, "assumed-comm", "comm bytes: %v; assuming 0 bytes", berr)
			}
			if merr != nil {
				b.assume(guard.SevWarn, sn, n, "assumed-comm", "comm msgs: %v; assuming 1 message", merr)
			}
		}
		return live, nil

	case bst.KindVar:
		for _, c := range live {
			b.newNode(sn, parent, c.env, c.prob)
		}
		return live, nil

	case bst.KindSet:
		set := sn.Stmt.(*skeleton.Set)
		out := make([]ectx, 0, len(live))
		for _, c := range live {
			v, err := set.Value.Eval(c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "set %s: %v", set.Name, err)
				}
				n := b.newNode(sn, parent, c.env, c.prob)
				b.assume(guard.SevWarn, sn, n, "assumed-binding",
					"set %s: %v; binding dropped", set.Name, err)
				out = append(out, ectx{env: c.env, prob: c.prob})
				continue
			}
			b.newNode(sn, parent, c.env, c.prob)
			env := c.env.Clone()
			env[set.Name] = v
			out = append(out, ectx{env: env, prob: c.prob})
		}
		return mergeCtxs(out), nil

	case bst.KindLoop, bst.KindWhile:
		return b.loop(parent, sn, live, esc)

	case bst.KindBranch:
		return b.branch(parent, sn, live, esc)

	case bst.KindCall:
		return b.call(parent, sn, live)

	case bst.KindReturn:
		st := sn.Stmt.(*skeleton.Return)
		return b.jump(parent, sn, live, st.Prob, &esc.ret)

	case bst.KindBreak:
		st := sn.Stmt.(*skeleton.Break)
		return b.jump(parent, sn, live, st.Prob, &esc.brk)

	case bst.KindContinue:
		st := sn.Stmt.(*skeleton.Continue)
		return b.jump(parent, sn, live, st.Prob, &esc.cont)

	case bst.KindHole:
		if !b.opts.Lenient {
			return nil, b.errf(sn, "cannot model a parser hole in strict mode")
		}
		h := sn.Stmt.(*skeleton.Hole)
		for _, c := range live {
			n := b.newNode(sn, parent, c.env, c.prob)
			b.assume(guard.SevError, sn, n, "hole",
				"unparseable statement %q modeled as zero work", h.Text)
		}
		return live, nil
	}
	return nil, b.errf(sn, "unhandled BST node kind %s", sn.Kind)
}

// jump models return/break/continue: a fraction p of each live context's
// probability escapes; the remainder continues past the statement.
func (b *builder) jump(parent *Node, sn *bst.Node, live []ectx, probX expr.Expr, sink *float64) ([]ectx, error) {
	out := make([]ectx, 0, len(live))
	for _, c := range live {
		p := 1.0
		var perr error
		if probX != nil {
			v, err := evalProb(probX, c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "prob: %v", err)
				}
				perr, v = err, 0.5
			}
			p = v
		}
		n := b.newNode(sn, parent, c.env, c.prob)
		if perr != nil {
			b.assume(guard.SevWarn, sn, n, "assumed-jump-prob",
				"prob: %v; assuming 0.5", perr)
		}
		*sink += c.prob * p
		out = append(out, ectx{env: c.env, prob: c.prob * (1 - p)})
	}
	return out, nil
}

// loop models a counted or statistical loop under each context: a single
// BET node whose children model ONE representative iteration (loop
// variables bound to their expected value over the range), with the
// expected iteration count attached. break/return mass inside the body
// truncates the expectation per the geometric formula.
func (b *builder) loop(parent *Node, sn *bst.Node, live []ectx, esc *escape) ([]ectx, error) {
	out := make([]ectx, 0, len(live))
	for _, c := range live {
		n := b.newNode(sn, parent, c.env, c.prob)
		bodyEnv := c.env.Clone()
		var rangeIters float64
		switch sn.Kind {
		case bst.KindLoop:
			lp := sn.Stmt.(*skeleton.Loop)
			iters, mid, err := loopRange(lp, c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "%v", err)
				}
				// The static bound was not evaluable under this context;
				// fall back to the minimal prior of one iteration. The
				// loop variable stays unbound, so body quantities that
				// depend on it degrade through their own fallbacks.
				b.assume(guard.SevWarn, sn, n, "assumed-trip-count",
					"%v; assuming 1 iteration", err)
				rangeIters = 1
				break
			}
			rangeIters = iters
			if iters > 0 {
				bodyEnv[lp.Var] = mid
			}
		case bst.KindWhile:
			wh := sn.Stmt.(*skeleton.While)
			iters, err := evalNonNeg(wh.Iters, c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "while iters: %v", err)
				}
				iters = 1
				b.assume(guard.SevWarn, sn, n, "assumed-trip-count",
					"while iters: %v; assuming 1 iteration", err)
			}
			rangeIters = iters
		}
		if rangeIters <= 0 {
			n.Iters = 0
			out = append(out, c)
			continue
		}
		_, bodyEsc, err := b.body(n, sn.Children, []ectx{{env: bodyEnv, prob: 1}})
		if err != nil {
			return nil, err
		}
		// Per-iteration early-exit probability: break exits the loop,
		// return exits the whole function through the loop. The two are
		// competing risks within one iteration (the escape masses are
		// disjoint), so the iteration survives with probability
		// q = 1 - r - b and the loop exits via return with probability
		// r/(r+b) x (1 - q^n).
		r := clamp01(bodyEsc.ret)
		brk := clamp01(bodyEsc.brk)
		pExit := clamp01(r + brk)
		n.Iters = expectedIters(rangeIters, pExit)
		if r > 0 {
			pRetTotal := clamp01(r / pExit * (1 - math.Pow(1-pExit, rangeIters)))
			esc.ret += c.prob * pRetTotal
			c = ectx{env: c.env, prob: c.prob * (1 - pRetTotal)}
		}
		out = append(out, c)
	}
	return out, nil
}

// expectedIters implements the reconstructed §IV-B formula: a loop of range
// n with per-iteration exit probability p runs a truncated-geometric
// expected (1-(1-p)^n)/p iterations, and exactly n when p = 0.
func expectedIters(n, p float64) float64 {
	if p <= 0 {
		return n
	}
	if p >= 1 {
		return 1
	}
	return (1 - math.Pow(1-p, n)) / p
}

// branch models an if/elif/else chain: for each context, one branch node
// whose children are the arm bodies modeled under conditional probability.
// Deterministic conditions (cond=...) evaluate under the context bindings;
// statistical ones (prob=...) use the profiled fall-through probability.
// Contexts surviving different arms are merged by identical bindings.
func (b *builder) branch(parent *Node, sn *bst.Node, live []ectx, esc *escape) ([]ectx, error) {
	var out []ectx
	for _, c := range live {
		n := b.newNode(sn, parent, c.env, c.prob)
		remaining := 1.0
		for _, arm := range sn.Children {
			var pArm float64
			var armErr error
			switch arm.Kind {
			case bst.KindCase:
				cond := arm.Case.Cond
				switch cond.Kind {
				case skeleton.CondExpr:
					v, err := cond.X.Eval(c.env)
					if err != nil {
						if !b.opts.Lenient {
							return nil, b.errf(arm, "branch condition: %v", err)
						}
						// Uniform branch prior: the condition is not
						// evaluable, so the arm takes half the remaining
						// mass.
						armErr = err
						pArm = remaining * 0.5
						break
					}
					if v != 0 {
						pArm = remaining
					}
				case skeleton.CondProb:
					p, err := evalProb(cond.X, c.env)
					if err != nil {
						if !b.opts.Lenient {
							return nil, b.errf(arm, "branch probability: %v", err)
						}
						armErr = err
						p = 0.5
					}
					pArm = remaining * p
				}
			case bst.KindElse:
				pArm = remaining
			}
			remaining = clamp01(remaining - pArm)
			if pArm <= probEps {
				if armErr != nil {
					b.assume(guard.SevWarn, arm, nil, "assumed-branch-prob",
						"%v; assuming uniform prior 0.5", armErr)
				}
				continue
			}
			// One group node per taken arm; its statements execute with
			// probability 1 relative to the arm being taken.
			armNode := b.newNode(arm, n, c.env, pArm)
			if armErr != nil {
				b.assume(guard.SevWarn, arm, armNode, "assumed-branch-prob",
					"%v; assuming uniform prior 0.5", armErr)
			}
			armOut, armEsc, err := b.body(armNode, arm.Children, []ectx{{env: c.env, prob: 1}})
			if err != nil {
				return nil, err
			}
			esc.ret += c.prob * pArm * armEsc.ret
			esc.brk += c.prob * pArm * armEsc.brk
			esc.cont += c.prob * pArm * armEsc.cont
			for _, ac := range armOut {
				out = append(out, ectx{env: ac.env, prob: c.prob * pArm * ac.prob})
			}
		}
		// Mass that took no arm (no else, or conditions false) falls
		// through with the original bindings.
		if remaining > probEps {
			out = append(out, ectx{env: c.env, prob: c.prob * remaining})
		}
	}
	return mergeCtxs(out), nil
}

// call mounts the callee's BST under a call node for each context,
// rebinding the callee parameters from the evaluated arguments. Return mass
// is absorbed at the call boundary; the caller continues unaffected (the
// skeleton language has no cross-function side effects).
func (b *builder) call(parent *Node, sn *bst.Node, live []ectx) ([]ectx, error) {
	callStmt := sn.Stmt.(*skeleton.Call)
	calleeRoot, err := b.bet.Tree.Func(callStmt.Func)
	if err != nil {
		if !b.opts.Lenient {
			return nil, b.errf(sn, "%v", err)
		}
		// Undefined callee: model the call as an empty assumed block.
		for _, c := range live {
			n := b.newNode(sn, parent, c.env, c.prob)
			b.assume(guard.SevError, sn, n, "assumed-call",
				"%v; call modeled as empty", err)
		}
		return live, nil
	}
	callee := calleeRoot.Fn
	for _, c := range live {
		n := b.newNode(sn, parent, c.env, c.prob)
		// Callee context: global input bindings overlaid with parameters.
		env := b.input.Clone()
		for i, param := range callee.Params {
			if i >= len(callStmt.Args) {
				// Reachable only in lenient mode: strict builds validated
				// arity up front.
				b.assume(guard.SevWarn, sn, n, "assumed-argument",
					"missing argument %d (%s); assuming 0", i+1, param)
				env[param] = 0
				continue
			}
			v, err := callStmt.Args[i].Eval(c.env)
			if err != nil {
				if !b.opts.Lenient {
					return nil, b.errf(sn, "argument %d: %v", i+1, err)
				}
				b.assume(guard.SevWarn, sn, n, "assumed-argument",
					"argument %d: %v; assuming 0", i+1, err)
				v = 0
			}
			env[param] = v
		}
		if _, _, err := b.body(n, calleeRoot.Children, []ectx{{env: env, prob: 1}}); err != nil {
			return nil, err
		}
	}
	return live, nil
}

// loopRange computes the iteration count and the expected loop-variable
// value for a counted loop under env. Negative steps iterate downward.
func loopRange(lp *skeleton.Loop, env expr.Env) (iters, mid float64, err error) {
	from, err := lp.From.Eval(env)
	if err != nil {
		return 0, 0, fmt.Errorf("loop from: %v", err)
	}
	to, err := lp.To.Eval(env)
	if err != nil {
		return 0, 0, fmt.Errorf("loop to: %v", err)
	}
	step := 1.0
	if lp.Step != nil {
		step, err = lp.Step.Eval(env)
		if err != nil {
			return 0, 0, fmt.Errorf("loop step: %v", err)
		}
	}
	if step == 0 {
		return 0, 0, fmt.Errorf("loop step is zero")
	}
	// The raw quotient, not its ceiling: bounds are often *expected*
	// values (an outer loop variable bound to its mean), where rounding
	// would bias the expectation. For integer-divisible concrete bounds
	// the quotient is already exact; for a non-divisible constant step the
	// model undercounts by at most one fractional iteration.
	iters = (to - from) / step
	if iters < 0 {
		iters = 0
	}
	// Expected value of the loop variable over the iteration range.
	mid = from + step*(iters-1)/2
	return iters, mid, nil
}

// evalWork evaluates comp metrics under a context, clamping negatives.
func evalWork(m skeleton.Metrics, env expr.Env) (hw.BlockWork, error) {
	var w hw.BlockWork
	fields := []struct {
		name string
		e    expr.Expr
		dst  *float64
	}{
		{"flops", m.FLOPs, &w.FLOPs},
		{"iops", m.IOPs, &w.IOPs},
		{"loads", m.Loads, &w.Loads},
		{"stores", m.Stores, &w.Stores},
		{"dsize", m.DSize, &w.DSizeB},
		{"divs", m.Divs, &w.Divs},
		{"vec", m.Vec, &w.Vec},
	}
	for _, f := range fields {
		if f.e == nil {
			continue
		}
		v, err := f.e.Eval(env)
		if err != nil {
			return w, fmt.Errorf("%s: %v", f.name, err)
		}
		if v < 0 {
			v = 0
		}
		*f.dst = v
	}
	if w.Vec < 1 {
		w.Vec = 1
	}
	return w, nil
}

func evalNonNeg(e expr.Expr, env expr.Env) (float64, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, nil
	}
	return v, nil
}

func evalProb(e expr.Expr, env expr.Env) (float64, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	return clamp01(v), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// prune drops contexts with negligible probability.
func prune(ctxs []ectx) []ectx {
	out := ctxs[:0]
	for _, c := range ctxs {
		if c.prob > probEps {
			out = append(out, c)
		}
	}
	return out
}

// mergeCtxs merges contexts with identical bindings, summing probabilities.
// Order of first occurrence is preserved for determinism.
func mergeCtxs(ctxs []ectx) []ectx {
	if len(ctxs) <= 1 {
		return ctxs
	}
	idx := make(map[string]int, len(ctxs))
	var out []ectx
	for _, c := range ctxs {
		k := envKey(c.env)
		if i, ok := idx[k]; ok {
			out[i].prob += c.prob
			continue
		}
		idx[k] = len(out)
		out = append(out, c)
	}
	return out
}
