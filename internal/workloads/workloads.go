// Package workloads provides minilang implementations of the paper's five
// evaluation benchmarks (§VI), preserving each benchmark's published
// structure, operation mix, and the specific properties the evaluation
// relies on:
//
//   - SORD: structured-grid 3-D viscoelastic wave propagation (earthquake
//     simulation), many routines inside a time-stepping loop, moderate
//     memory intensity, a data-dependent plasticity branch;
//   - CHARGEI: GTC particle-in-cell ion-charge deposition, eight loop
//     structures where early loops produce arrays consumed by later ones,
//     gather/scatter through particle-position indices;
//   - SRAD: speckle-reducing anisotropic diffusion on an image, with exp
//     and rand math-library calls as standalone hot spots;
//   - CFD: unstructured-grid finite-volume Euler solver: a time loop with
//     pressure/momentum/density updates, neighbor indirection, and a
//     division-heavy velocity recovery (the paper's model-underestimate);
//   - STASSUIJ: Green's Function Monte Carlo two-body correlation kernel:
//     a sparse-real x dense-complex matrix multiply (vectorizable — the
//     paper's overestimate without SIMD modeling) plus a butterfly element
//     exchange driven by an index array.
//
// Sizes are scaled down from the paper's inputs so the simulator substrate
// runs in milliseconds-to-seconds; Scale selects the input class.
package workloads

import (
	"fmt"
	"sort"

	"skope/internal/expr"
	"skope/internal/skeleton"
)

// Workload is one benchmark instance.
type Workload struct {
	// Name is the benchmark identifier ("sord", "chargei", ...).
	Name string
	// Description summarizes the benchmark and its paper role.
	Description string
	// Source is the minilang program text.
	Source string
	// Seed drives the deterministic rand() stream.
	Seed uint64
}

// Scale selects an input class. Scale 1 is the default testing size;
// benchmarks use larger values. Linear grid dimensions grow roughly with
// the square root of Scale so run time grows about linearly.
type Scale float64

// Standard scales.
const (
	ScaleTest  Scale = 1
	ScaleSmall Scale = 2
	ScaleFull  Scale = 4
)

func (s Scale) dim(base int) int {
	if s <= 0 {
		s = 1
	}
	d := int(float64(base) * sqrtApprox(float64(s)))
	if d < 4 {
		d = 4
	}
	return d
}

func (s Scale) count(base int) int {
	if s <= 0 {
		s = 1
	}
	return int(float64(base) * float64(s))
}

func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 1
	}
	g := x
	for i := 0; i < 20; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// Names lists the five paper benchmarks in evaluation order.
func Names() []string { return []string{"sord", "chargei", "srad", "cfd", "stassuij"} }

// Get returns the named workload at the given scale.
func Get(name string, s Scale) (*Workload, error) {
	switch name {
	case "sord":
		return SORD(s), nil
	case "chargei":
		return CHARGEI(s), nil
	case "srad":
		return SRAD(s), nil
	case "cfd":
		return CFD(s), nil
	case "stassuij":
		return STASSUIJ(s), nil
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (want one of %v)", name, Names())
}

// All returns the five benchmarks at the given scale, in evaluation order.
func All(s Scale) []*Workload {
	out := make([]*Workload, 0, 5)
	for _, n := range Names() {
		w, _ := Get(n, s)
		out = append(out, w)
	}
	sortStable(out)
	return out
}

func sortStable(ws []*Workload) {
	order := map[string]int{}
	for i, n := range Names() {
		order[n] = i
	}
	sort.SliceStable(ws, func(i, j int) bool { return order[ws[i].Name] < order[ws[j].Name] })
}

// SORD models the Support Operator Rupture Dynamics earthquake simulator:
// a 3-D structured-grid viscoelastic wave propagation code. The paper's
// input is 50x400x400 cells per MPI rank over a time-stepping loop; the
// minilang version preserves the routine structure (stress update, memory-
// variable attenuation, velocity update, absorbing boundary, halo copy,
// source injection, energy check) at a scaled grid.
func SORD(s Scale) *Workload {
	nx, ny, nz := s.dim(24), s.dim(24), s.dim(8)
	nt := s.count(4)
	src := fmt.Sprintf(`
// SORD: 3-D viscoelastic wave propagation on a structured grid.
global nx: int = %d;
global ny: int = %d;
global nz: int = %d;
global nt: int = %d;

global vx: [nz][ny][nx]float;
global vy: [nz][ny][nx]float;
global vz: [nz][ny][nx]float;
global sxx: [nz][ny][nx]float;
global syy: [nz][ny][nx]float;
global sxy: [nz][ny][nx]float;
global mem1: [nz][ny][nx]float;
global mem2: [nz][ny][nx]float;
global halo: [nz][ny]float;
global snap: [ny][nx]float;
global srcwave: [nt * 8]float;
global energy: float;
global vmax: float;
global vmin: float;
global srcamp: float = 1.0;

func main() {
  init_grid();
  filter_source();
  for t = 0 .. nt {
    inject_source(t);
    update_stress();
    attenuate();
    viscosity();
    update_velocity();
    boundary();
    pml_layers();
    exchange_halo();
    check_energy();
    if (mod(t, 2.0) < 1.0) {
      snapshot();
    }
    stats();
  }
}

func init_grid() {
  for k = 0 .. nz {
    for j = 0 .. ny {
      for i = 0 .. nx {
        vx[k][j][i] = rand() * 0.01;
        vy[k][j][i] = rand() * 0.01;
        vz[k][j][i] = 0.0;
        sxx[k][j][i] = 0.0;
        syy[k][j][i] = 0.0;
        sxy[k][j][i] = 0.0;
        mem1[k][j][i] = 0.0;
        mem2[k][j][i] = 0.0;
      }
    }
  }
}

func inject_source(t: int) {
  var k: int = nz / 2;
  var j: int = ny / 2;
  var i: int = nx / 2;
  var wave: float = 0.0;
  wave = ricker(t);
  sxx[k][j][i] = sxx[k][j][i] + srcamp * wave;
  syy[k][j][i] = syy[k][j][i] + srcamp * wave;
}

func ricker(t: int): float {
  var a: float = (t - 2.0) * 0.7;
  var r: float = 0.0;
  r = (1.0 - 2.0 * a * a) * exp(0.0 - a * a);
  r = r + srcwave[t * 4];
  return r;
}

// Hot: stress update from velocity gradients (FD stencil, compute heavy).
func update_stress() {
  for k = 1 .. nz - 1 {
    for j = 1 .. ny - 1 {
      for i = 1 .. nx - 1 {
        var dvxx: float = (vx[k][j][i] - vx[k][j][i-1]) * 1.25;
        var dvyy: float = (vy[k][j][i] - vy[k][j-1][i]) * 1.25;
        var dvzz: float = (vz[k][j][i] - vz[k-1][j][i]) * 1.25;
        var dvxy: float = (vx[k][j][i] - vx[k][j-1][i] + vy[k][j][i] - vy[k][j][i-1]) * 0.625;
        var trace: float = dvxx + dvyy + dvzz;
        sxx[k][j][i] = sxx[k][j][i] + 1.8 * trace + 2.4 * dvxx + mem1[k][j][i] * 0.05;
        syy[k][j][i] = syy[k][j][i] + 1.8 * trace + 2.4 * dvyy + mem2[k][j][i] * 0.05;
        sxy[k][j][i] = sxy[k][j][i] + 1.2 * dvxy;
        if (sxx[k][j][i] > 4.0) {
          sxx[k][j][i] = 4.0 + (sxx[k][j][i] - 4.0) * 0.25;
        }
      }
    }
  }
}

// Hot: viscoelastic memory-variable update (compute heavy, no stencil).
func attenuate() {
  for k = 0 .. nz {
    for j = 0 .. ny {
      for i = 0 .. nx {
        var r1: float = mem1[k][j][i];
        var r2: float = mem2[k][j][i];
        mem1[k][j][i] = r1 * 0.95 + sxx[k][j][i] * 0.02 + r2 * 0.01;
        mem2[k][j][i] = r2 * 0.95 + syy[k][j][i] * 0.02 + r1 * 0.01;
      }
    }
  }
}

// Hot: velocity update from stress divergence (FD stencil).
func update_velocity() {
  for k = 1 .. nz - 1 {
    for j = 1 .. ny - 1 {
      for i = 1 .. nx - 1 {
        var dsx: float = (sxx[k][j][i+1] - sxx[k][j][i]) * 1.25 + (sxy[k][j+1][i] - sxy[k][j][i]) * 1.25;
        var dsy: float = (syy[k][j+1][i] - syy[k][j][i]) * 1.25 + (sxy[k][j][i+1] - sxy[k][j][i]) * 1.25;
        vx[k][j][i] = vx[k][j][i] + 0.004 * dsx;
        vy[k][j][i] = vy[k][j][i] + 0.004 * dsy;
        vz[k][j][i] = vz[k][j][i] + 0.002 * (sxx[k+1][j][i] - sxx[k][j][i]);
      }
    }
  }
}

// Warm: absorbing boundary on the two k-surfaces (light per-cell work).
func boundary() {
  for j = 0 .. ny {
    for i = 0 .. nx {
      vx[0][j][i] = vx[0][j][i] * 0.92;
      vy[0][j][i] = vy[0][j][i] * 0.92;
      vx[nz-1][j][i] = vx[nz-1][j][i] * 0.92;
      vy[nz-1][j][i] = vy[nz-1][j][i] * 0.92;
    }
  }
}

// Memory-bound: halo plane copy (stands in for the MPI exchange buffers).
func exchange_halo() {
  for k = 0 .. nz {
    for j = 0 .. ny {
      halo[k][j] = vx[k][j][nx-1];
    }
  }
  for k = 0 .. nz {
    for j = 0 .. ny {
      vx[k][j][0] = vx[k][j][0] * 0.5 + halo[k][j] * 0.5;
    }
  }
}

// Memory-heavy: viscous damping sweep over the memory variables (daxpy
// pattern, streaming, vectorizable by aggressive compilers).
func viscosity() {
  for k = 0 .. nz {
    for j = 0 .. ny {
      for i = 0 .. nx {
        sxy[k][j][i] = sxy[k][j][i] * 0.985 + mem1[k][j][i] * 0.005 - mem2[k][j][i] * 0.002;
      }
    }
  }
}

// Perfectly-matched-layer strips on the j-faces: medium per-cell work over
// thin boundary regions.
func pml_layers() {
  for k = 0 .. nz {
    for j = 0 .. 3 {
      for i = 0 .. nx {
        var d: float = (3.0 - j) * 0.11;
        vx[k][j][i] = vx[k][j][i] * (1.0 - d * d * 0.5);
        vy[k][j][i] = vy[k][j][i] * (1.0 - d * d * 0.5);
        vx[k][ny-1-j][i] = vx[k][ny-1-j][i] * (1.0 - d * d * 0.5);
        vy[k][ny-1-j][i] = vy[k][ny-1-j][i] * (1.0 - d * d * 0.5);
      }
    }
  }
}

// Tiny library-heavy routine: band-pass filter of the source time series.
func filter_source() {
  for t = 0 .. nt * 8 {
    var w: float = 0.0;
    w = sin(t * 0.39) * 0.6 + cos(t * 0.17) * 0.4;
    srcwave[t] = w * exp(0.0 - t * 0.01);
  }
}

// Occasional output: copy a velocity plane into the snapshot buffer
// (memory burst, every other step).
func snapshot() {
  var k: int = nz / 2;
  for j = 0 .. ny {
    for i = 0 .. nx {
      snap[j][i] = vx[k][j][i];
    }
  }
}

// Min/max field statistics with data-dependent branches.
func stats() {
  vmax = 0.0;
  vmin = 0.0;
  for k = 0 .. nz step 2 {
    for j = 0 .. ny step 2 {
      for i = 0 .. nx step 2 {
        var v: float = vx[k][j][i];
        if (v > vmax) {
          vmax = v;
        }
        if (v < vmin) {
          vmin = v;
        }
      }
    }
  }
}

// Reduction with a data-dependent branch (profiled).
func check_energy() {
  energy = 0.0;
  for k = 0 .. nz step 2 {
    for j = 0 .. ny step 2 {
      for i = 0 .. nx step 2 {
        var e: float = vx[k][j][i] * vx[k][j][i] + vy[k][j][i] * vy[k][j][i];
        if (e > 0.0001) {
          energy = energy + e;
        }
      }
    }
  }
}
`, nx, ny, nz, nt)
	return &Workload{
		Name: "sord",
		Description: fmt.Sprintf(
			"SORD earthquake simulator: %dx%dx%d grid, %d time steps", nz, ny, nx, nt),
		Source: src,
		Seed:   101,
	}
}

// CHARGEI models the GTC gyrokinetic particle-in-cell ion-charge
// deposition function: eight loop structures where some loops produce the
// arrays consumed by others (weights -> scatter -> smooth -> field).
func CHARGEI(s Scale) *Workload {
	npart := s.count(12000)
	mgrid := s.count(8192)
	src := fmt.Sprintf(`
// CHARGEI: GTC particle-in-cell ion charge deposition.
global npart: int = %d;
global mgrid: int = %d;

global px: [npart]float;    // particle positions in [0,1)
global pv: [npart]float;    // particle velocities
global w0: [npart]float;    // deposition weights (produced, then consumed)
global w1: [npart]float;
global gidx: [npart]int;    // grid cell of each particle
global gidx2: [npart]int;   // gyro-ring deposition points 2-4
global gidx3: [npart]int;
global gidx4: [npart]int;
global density: [mgrid]float;
global smoothed: [mgrid]float;
global field: [mgrid]float;
global phi: [mgrid]float;
global total: float;

func main() {
  load_particles();
  compute_weights();
  zero_grid();
  scatter_charge();
  smooth_grid();
  smooth_grid();
  solve_field();
  gather_field();
  moments();
}

// Loop 1: particle loading.
func load_particles() {
  for p = 0 .. npart {
    px[p] = rand();
    pv[p] = rand() * 2.0 - 1.0;
  }
}

// Loop 2 (hot, ~44%%): per-particle gyro-averaging weights (compute heavy).
func compute_weights() {
  for p = 0 .. npart {
    var x: float = px[p];
    var v: float = pv[p];
    var rho: float = 0.02 + 0.01 * v * v;
    var t: float = x * 6.2831853;
    var c1: float = 1.0 - t * t / 2.0 + t * t * t * t / 24.0;
    var s1: float = t - t * t * t / 6.0;
    w0[p] = (1.0 - rho) * (0.5 + 0.5 * c1 * c1);
    w1[p] = rho * (0.5 + 0.5 * s1 * s1);
    gidx[p] = x * (mgrid - 2);
    gidx2[p] = mod(x + rho, 1.0) * (mgrid - 2);
    gidx3[p] = mod(x + 2.0 * rho, 1.0) * (mgrid - 2);
    gidx4[p] = mod(x + 3.0 * rho, 1.0) * (mgrid - 2);
  }
}

// Loop 3: grid reset (memory streaming).
func zero_grid() {
  for g = 0 .. mgrid {
    density[g] = 0.0;
  }
}

// Loop 4 (hot, ~38%%): four-point gyro-ring scatter deposition (indirect
// stores spread across the grid, cache unfriendly).
func scatter_charge() {
  for p = 0 .. npart {
    var g: int = gidx[p];
    var g2: int = gidx2[p];
    var g3: int = gidx3[p];
    var g4: int = gidx4[p];
    density[g] = density[g] + w0[p] * 0.25;
    density[g+1] = density[g+1] + w0[p] * 0.25;
    density[g2] = density[g2] + w1[p] * 0.25;
    density[g2+1] = density[g2+1] + w1[p] * 0.25;
    density[g3] = density[g3] + w0[p] * 0.25;
    density[g3+1] = density[g3+1] + w0[p] * 0.25;
    density[g4] = density[g4] + w1[p] * 0.25;
    density[g4+1] = density[g4+1] + w1[p] * 0.25;
  }
}

// Loops 5-6: charge smoothing sweeps (stencil over the grid).
func smooth_grid() {
  for g = 1 .. mgrid - 1 {
    smoothed[g] = density[g] * 0.5 + (density[g-1] + density[g+1]) * 0.25;
  }
  for g = 1 .. mgrid - 1 {
    density[g] = smoothed[g];
  }
}

// Loop 7: tridiagonal-ish field solve sweep.
func solve_field() {
  phi[0] = 0.0;
  for g = 1 .. mgrid - 1 {
    phi[g] = (density[g] + phi[g-1] * 0.45) * 0.62;
  }
  for g = 1 .. mgrid - 1 {
    field[g] = (phi[g+1] - phi[g-1]) * 0.5;
  }
}

// Loop 8: gather field back to particles (indirect loads over the ring).
func gather_field() {
  for p = 0 .. npart {
    var g: int = gidx[p];
    var g2: int = gidx2[p];
    pv[p] = pv[p] + (field[g] + field[g2]) * 0.5 * w0[p];
  }
}

// Final reduction.
func moments() {
  total = 0.0;
  for g = 0 .. mgrid {
    total = total + density[g];
  }
}
`, npart, mgrid)
	return &Workload{
		Name: "chargei",
		Description: fmt.Sprintf(
			"GTC CHARGEI ion-charge deposition: %d particles, %d grid points", npart, mgrid),
		Source: src,
		Seed:   202,
	}
}

// SRAD models speckle-reducing anisotropic diffusion for ultrasound/radar
// imaging: a signature is computed from a speckle sample region (heavy in
// exp and rand library calls, the paper's #1 and #3 hot spots), then the
// image is diffused with per-pixel coefficients.
func SRAD(s Scale) *Workload {
	n := s.dim(96)
	sample := n / 4
	niter := s.count(2)
	src := fmt.Sprintf(`
// SRAD: speckle reducing anisotropic diffusion (medical imaging).
global n: int = %d;
global sample: int = %d;
global niter: int = %d;

global img: [n][n]float;
global coef: [n][n]float;
global dn: [n][n]float;
global ds: [n][n]float;
global de: [n][n]float;
global dw: [n][n]float;
global sigmean: float;
global sigvar: float;

func main() {
  gen_image();
  for it = 0 .. niter {
    sample_signature();
    compute_coefficients();
    diffuse();
  }
}

// Synthetic speckled image: multiplicative noise via rand + exp.
func gen_image() {
  for i = 0 .. n {
    for j = 0 .. n {
      var noise: float = 0.0;
      noise = rand();
      img[i][j] = exp((0.3 + 0.1 * noise) * 2.0) * 0.25;
    }
  }
}

// Hot (library): signature of the speckle sample region.
func sample_signature() {
  var sum: float = 0.0;
  var sum2: float = 0.0;
  for i = 0 .. sample {
    for j = 0 .. sample {
      var v: float = img[i][j];
      var jitter: float = 0.0;
      jitter = rand();
      var lv: float = 0.0;
      lv = log(v + 0.0001 + jitter * 0.0001);
      sum = sum + lv;
      sum2 = sum2 + lv * lv;
    }
  }
  var cnt: float = sample * sample;
  sigmean = sum / cnt;
  sigvar = (sum2 - sum * sum / cnt) / cnt;
}

// Hot: diffusion coefficient per pixel (divisions + exp similarity).
func compute_coefficients() {
  var q0: float = sigvar / (sigmean * sigmean + 0.0001);
  for i = 1 .. n - 1 {
    for j = 1 .. n - 1 {
      var c: float = img[i][j];
      dn[i][j] = img[i-1][j] - c;
      ds[i][j] = img[i+1][j] - c;
      de[i][j] = img[i][j-1] - c;
      dw[i][j] = img[i][j+1] - c;
      var g2: float = (dn[i][j] * dn[i][j] + ds[i][j] * ds[i][j] + de[i][j] * de[i][j] + dw[i][j] * dw[i][j]) / (c * c + 0.0001);
      var l: float = (dn[i][j] + ds[i][j] + de[i][j] + dw[i][j]) / (c + 0.0001);
      var q: float = (0.5 * g2 - 0.0625 * l * l) / ((1.0 + 0.25 * l) * (1.0 + 0.25 * l) + 0.0001);
      var e: float = 0.0;
      e = exp(0.0 - max(0.0, q - q0));
      coef[i][j] = min(1.0, e);
    }
  }
}

// Hot: image update from diffusion fluxes (stencil, memory heavy).
func diffuse() {
  for i = 1 .. n - 1 {
    for j = 1 .. n - 1 {
      var cn: float = coef[i][j];
      var cs: float = coef[i+1][j];
      var ce: float = coef[i][j];
      var cw: float = coef[i][j+1];
      img[i][j] = img[i][j] + 0.0625 * (cn * dn[i][j] + cs * ds[i][j] + ce * de[i][j] + cw * dw[i][j]);
    }
  }
}
`, n, sample, niter)
	return &Workload{
		Name: "srad",
		Description: fmt.Sprintf(
			"SRAD speckle removal: %dx%d image, %dx%d sample, %d iterations", n, n, sample, sample, niter),
		Source: src,
		Seed:   303,
	}
}

// CFD models the unstructured-grid finite-volume 3-D Euler solver
// mini-application: a time-stepping loop updating pressure, momentum, and
// density over cells with explicit neighbor indirection, plus the
// division-heavy velocity recovery the paper singles out (its model treats
// divisions as ordinary FLOPs and underestimates that spot).
func CFD(s Scale) *Workload {
	ncell := s.count(6000)
	niter := s.count(3)
	src := fmt.Sprintf(`
// CFD: unstructured finite-volume Euler solver.
global ncell: int = %d;
global nnb: int = 4;
global niter: int = %d;

global nbidx: [ncell][nnb]int;   // neighbor connectivity
global density: [ncell]float;
global momx: [ncell]float;
global momy: [ncell]float;
global energy: [ncell]float;
global pressure: [ncell]float;
global velx: [ncell]float;
global vely: [ncell]float;
global fluxd: [ncell]float;
global fluxx: [ncell]float;
global fluxy: [ncell]float;
global fluxe: [ncell]float;
global resid: float;

func main() {
  init_mesh();
  for it = 0 .. niter {
    compute_velocity();
    compute_pressure();
    compute_flux();
    time_step();
    check_residual();
  }
}

// Mesh setup: pseudo-random connectivity (unstructured access pattern).
func init_mesh() {
  for c = 0 .. ncell {
    density[c] = 1.0;
    momx[c] = 0.1;
    momy[c] = 0.0;
    energy[c] = 2.5;
    for k = 0 .. nnb {
      var r: float = 0.0;
      r = rand();
      nbidx[c][k] = r * (ncell - 1);
    }
  }
}

// The paper's spot 6: velocity from density and momentum — a series of
// divisions, expanded on BG/Q into reciprocal-estimate + Newton iterations.
func compute_velocity() {
  for c = 0 .. ncell {
    velx[c] = momx[c] / density[c];
    vely[c] = momy[c] / density[c];
  }
}

// Pressure from the equation of state.
func compute_pressure() {
  for c = 0 .. ncell {
    var ke: float = 0.5 * (momx[c] * velx[c] + momy[c] * vely[c]);
    pressure[c] = 0.4 * (energy[c] - ke);
    if (pressure[c] < 0.001) {
      pressure[c] = 0.001;
    }
  }
}

// Hot: flux accumulation over neighbor faces (indirect loads, compute).
func compute_flux() {
  for c = 0 .. ncell {
    var fd: float = 0.0;
    var fx: float = 0.0;
    var fy: float = 0.0;
    var fe: float = 0.0;
    for k = 0 .. nnb {
      var nb: int = nbidx[c][k];
      var avgp: float = 0.5 * (pressure[c] + pressure[nb]);
      var avgu: float = 0.5 * (velx[c] + velx[nb]);
      var avgv: float = 0.5 * (vely[c] + vely[nb]);
      fd = fd + density[nb] * avgu * 0.25;
      fx = fx + (momx[nb] * avgu + avgp) * 0.25;
      fy = fy + (momy[nb] * avgv + avgp) * 0.25;
      fe = fe + (energy[nb] + avgp) * avgu * 0.25;
    }
    fluxd[c] = fd;
    fluxx[c] = fx;
    fluxy[c] = fy;
    fluxe[c] = fe;
  }
}

// Conserved-variable update.
func time_step() {
  for c = 0 .. ncell {
    density[c] = density[c] + 0.002 * (fluxd[c] - density[c] * 0.1);
    momx[c] = momx[c] + 0.002 * (fluxx[c] - momx[c] * 0.1);
    momy[c] = momy[c] + 0.002 * (fluxy[c] - momy[c] * 0.1);
    energy[c] = energy[c] + 0.002 * (fluxe[c] - energy[c] * 0.1);
  }
}

// Residual norm with an early-convergence branch.
func check_residual() {
  resid = 0.0;
  for c = 0 .. ncell step 4 {
    var d: float = fluxd[c];
    if (d < 0.0) {
      d = 0.0 - d;
    }
    resid = resid + d;
  }
}
`, ncell, niter)
	return &Workload{
		Name: "cfd",
		Description: fmt.Sprintf(
			"CFD unstructured Euler solver: %d cells, %d iterations", ncell, niter),
		Source: src,
		Seed:   404,
	}
}

// STASSUIJ models the Green's Function Monte Carlo two-body correlation
// kernel: phase 1 multiplies a sparse 132x132 real matrix with a dense
// 132xNCOL complex matrix (the paper's top spot at 68%, vectorized by the
// XL compiler — hence the @vec annotation the analytical model ignores);
// phase 2 exchanges groups of four elements per row in a butterfly pattern
// driven by an index array (the 23% second spot).
func STASSUIJ(s Scale) *Workload {
	nrow := 132
	ncol := s.count(384)
	nnzPerRow := 5
	src := fmt.Sprintf(`
// STASSUIJ: GFMC two-body correlation operator kernel.
global nrow: int = %d;
global ncol: int = %d;
global nnzrow: int = %d;
global nnz: int = nrow * nnzrow;

global sval: [nnz]float;     // sparse matrix values (real)
global scol: [nnz]int;       // sparse matrix column indices
global densre: [nrow][ncol]float;
global densim: [nrow][ncol]float;
global outre: [nrow][ncol]float;
global outim: [nrow][ncol]float;
global xchg: [nrow][4]int;   // butterfly exchange indices
global checksum: float;

func main() {
  setup();
  spmm();
  butterfly();
  reduce();
}

func setup() {
  for r = 0 .. nrow {
    for k = 0 .. nnzrow {
      var rr: float = 0.0;
      rr = rand();
      sval[r * nnzrow + k] = rr - 0.5;
      var cc: float = 0.0;
      cc = rand();
      scol[r * nnzrow + k] = cc * (nrow - 1);
    }
    for q = 0 .. 4 {
      var xr: float = 0.0;
      xr = rand();
      xchg[r][q] = xr * (ncol / 4 - 1);
    }
  }
  for r = 0 .. nrow {
    for c = 0 .. ncol {
      densre[r][c] = 0.001 * (r + c);
      densim[r][c] = 0.001 * (r - c);
      outre[r][c] = 0.0;
      outim[r][c] = 0.0;
    }
  }
}

// Hot spot 1 (68%%): sparse x dense complex multiply. The inner loop takes
// one sparse element and scales the complex dense row — vectorized by the
// native compiler (@vec), which the paper's hardware model does not credit.
func spmm() {
  for r = 0 .. nrow {
    for k = 0 .. nnzrow {
      var v: float = sval[r * nnzrow + k];
      var src: int = scol[r * nnzrow + k];
      for c = 0 .. ncol @vec {
        outre[r][c] = outre[r][c] + v * densre[src][c];
        outim[r][c] = outim[r][c] + v * densim[src][c];
      }
    }
  }
}

// Hot spot 2 (23%%): butterfly exchange of groups of four elements per row,
// with the exchange indices coming from a separate array.
func butterfly() {
  for r = 0 .. nrow {
    for g = 0 .. ncol / 4 {
      var q: int = 0;
      q = mod(g, 4.0);
      var pairbase: int = xchg[r][q];
      var a: int = g * 4;
      var b: int = pairbase * 4;
      var tre: float = outre[r][a];
      var tim: float = outim[r][a];
      outre[r][a] = outre[r][b];
      outim[r][a] = outim[r][b];
      outre[r][b] = tre;
      outim[r][b] = tim;
    }
  }
}

func reduce() {
  checksum = 0.0;
  for r = 0 .. nrow {
    for c = 0 .. ncol step 8 {
      checksum = checksum + outre[r][c] * outre[r][c] + outim[r][c] * outim[r][c];
    }
  }
}
`, nrow, ncol, nnzPerRow)
	return &Workload{
		Name: "stassuij",
		Description: fmt.Sprintf(
			"STASSUIJ GFMC correlation kernel: %dx%d sparse x %dx%d complex dense", nrow, nrow, nrow, ncol),
		Source: src,
		Seed:   505,
	}
}

// Pedagogical returns the paper's Figure 2-style example directly as a code
// skeleton (the paper presents it in skeleton form), plus its input
// context. It exercises branches that assign context variables, a function
// called under forked contexts, a while loop with a probabilistic break,
// and a library call.
func Pedagogical() (*skeleton.Program, expr.Env) {
	const text = `
# pedagogical example in the spirit of the paper's Figure 2
def main(n, m)
  var A[n][m]
  set knob = 0
  for i = 0 : n label="outer"
    comp flops=6 loads=3 stores=1 name="prep"
    if prob=0.3
      set knob = 1
    else
      set knob = 0
    end
    call foo(i, knob)
  end
  while iters=m/4 label="conv"
    comp flops=8*m loads=3*m name="solve"
    break prob=0.02
  end
  lib exp count=n name="exptail"
end

def foo(x, k)
  if cond = k == 1
    comp flops=40*x loads=2*x stores=1 name="heavy"
  else
    comp flops=12 loads=2 name="light"
  end
end
`
	return skeleton.MustParse("pedagogical", text), expr.Env{"n": 64, "m": 128}
}
