package workloads

import (
	"testing"

	"skope/internal/interp"
	"skope/internal/minilang"
	"skope/internal/skeleton"
)

func TestAllParseCheckAndRun(t *testing.T) {
	for _, w := range All(ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := minilang.Parse(w.Name, w.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := minilang.Check(prog); err != nil {
				t.Fatalf("check: %v", err)
			}
			e, err := interp.New(prog, &interp.Options{Seed: w.Seed})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			if err := e.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if e.Steps() == 0 {
				t.Error("no statements executed")
			}
		})
	}
}

func TestNamesAndGet(t *testing.T) {
	if len(Names()) != 5 {
		t.Fatalf("names = %v", Names())
	}
	for _, n := range Names() {
		w, err := Get(n, ScaleTest)
		if err != nil || w.Name != n {
			t.Errorf("Get(%s) = %v, %v", n, w, err)
		}
	}
	if _, err := Get("hpl", ScaleTest); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	for _, name := range Names() {
		small, _ := Get(name, ScaleTest)
		big, _ := Get(name, ScaleSmall)
		stepsSmall := runSteps(t, small)
		stepsBig := runSteps(t, big)
		if stepsBig <= stepsSmall {
			t.Errorf("%s: scale did not grow work: %d -> %d", name, stepsSmall, stepsBig)
		}
	}
}

func runSteps(t *testing.T, w *Workload) int64 {
	t.Helper()
	prog := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
	e, err := interp.New(prog, &interp.Options{Seed: w.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Steps()
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	w := SRAD(ScaleTest)
	a := runSteps(t, w)
	b := runSteps(t, w)
	if a != b {
		t.Errorf("steps differ across runs: %d vs %d", a, b)
	}
}

func TestPedagogical(t *testing.T) {
	prog, env := Pedagogical()
	if err := skeleton.Validate(prog); err != nil {
		t.Fatal(err)
	}
	if env["n"] != 64 || env["m"] != 128 {
		t.Errorf("env = %v", env)
	}
}

func TestSTASSUIJHasVecLoop(t *testing.T) {
	w := STASSUIJ(ScaleTest)
	prog := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
	found := false
	var scan func(b *minilang.Block)
	scan = func(b *minilang.Block) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *minilang.For:
				if st.Vec {
					found = true
				}
				scan(st.Body)
			case *minilang.While:
				scan(st.Body)
			case *minilang.If:
				scan(st.Then)
				if st.Else != nil {
					scan(st.Else)
				}
			}
		}
	}
	for _, f := range prog.Funcs {
		scan(f.Body)
	}
	if !found {
		t.Error("STASSUIJ lost its @vec annotation")
	}
}

func TestCFDHasDivisions(t *testing.T) {
	w := CFD(ScaleTest)
	prog := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
	vel, err := prog.Func("compute_velocity")
	if err != nil {
		t.Fatal(err)
	}
	segs := minilang.SegmentsOf("compute_velocity", vel.Body.Stmts[0].(*minilang.For).Body)
	if len(segs) == 0 {
		t.Fatal("no segments in compute_velocity")
	}
	c := minilang.CountSegment(&segs[0])
	if c.Divs < 2 {
		t.Errorf("velocity recovery has %d divisions, want >= 2", c.Divs)
	}
}

func TestSRADUsesLibFunctions(t *testing.T) {
	w := SRAD(ScaleTest)
	prog := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
	libs := map[string]bool{}
	var scanBlock func(b *minilang.Block)
	scanBlock = func(b *minilang.Block) {
		for _, s := range b.Stmts {
			for _, seg := range minilang.SegmentsOf("x", &minilang.Block{Stmts: []minilang.Stmt{s}}) {
				c := minilang.CountSegment(&seg)
				for name := range c.Lib {
					libs[name] = true
				}
			}
			switch st := s.(type) {
			case *minilang.For:
				scanBlock(st.Body)
			case *minilang.While:
				scanBlock(st.Body)
			case *minilang.If:
				scanBlock(st.Then)
				if st.Else != nil {
					scanBlock(st.Else)
				}
			}
		}
	}
	for _, f := range prog.Funcs {
		scanBlock(f.Body)
	}
	for _, want := range []string{"exp", "rand", "log"} {
		if !libs[want] {
			t.Errorf("SRAD does not call %s", want)
		}
	}
}

// The five benchmarks must round-trip through the minilang formatter and
// execute identically afterwards (same statement count and rand stream).
func TestWorkloadsFormatRoundTrip(t *testing.T) {
	for _, w := range All(ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p1 := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
			text := minilang.Format(p1)
			p2, err := minilang.Parse(w.Name+"-rt", text)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if err := minilang.Check(p2); err != nil {
				t.Fatalf("re-check: %v", err)
			}
			e1, err := interp.New(p1, &interp.Options{Seed: w.Seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := e1.Run(); err != nil {
				t.Fatal(err)
			}
			e2, err := interp.New(p2, &interp.Options{Seed: w.Seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := e2.Run(); err != nil {
				t.Fatalf("round-tripped program fails: %v", err)
			}
			if e1.Steps() != e2.Steps() {
				t.Errorf("steps differ after round trip: %d vs %d", e1.Steps(), e2.Steps())
			}
			for name, v := range e1.Globals {
				if e2.Globals[name] != v {
					t.Errorf("global %s differs: %g vs %g", name, v, e2.Globals[name])
				}
			}
		})
	}
}
