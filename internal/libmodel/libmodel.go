// Package libmodel implements the paper's semi-analytical modeling of
// opaque library functions (§IV-C). The control flow and instruction mix of
// functions like exp or rand cannot be derived from the application source;
// the paper obtains their dynamic instruction mixes empirically, by running
// them on a local machine under hardware counters over randomly generated
// inputs, and then projects their cost onto targets with the same roofline
// model used for application blocks.
//
// This package does exactly that, with the local machine replaced by the
// local interpreter: each library function has a minilang micro-kernel — a
// pure-arithmetic software implementation (Horner polynomials, Newton
// iterations, an xorshift generator) — that is executed over many random
// inputs under a counting observer. The averaged per-invocation operation
// mix becomes the function's BlockWork, consumed by hotspot.Analyze through
// the LibModeler interface.
package libmodel

import (
	"fmt"
	"sync"

	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/minilang"
)

// Model maps library function names to their calibrated per-invocation
// instruction mixes. It implements hotspot.LibModeler.
type Model struct {
	mixes map[string]hw.BlockWork
}

// LibWork returns the per-invocation workload of the named function.
func (m *Model) LibWork(name string) (hw.BlockWork, error) {
	w, ok := m.mixes[name]
	if !ok {
		return hw.BlockWork{}, fmt.Errorf("libmodel: no model for library function %q", name)
	}
	return w, nil
}

// Functions returns the modeled function names.
func (m *Model) Functions() []string {
	out := make([]string, 0, len(m.mixes))
	for k := range m.mixes {
		out = append(out, k)
	}
	return out
}

// Set overrides or adds a function mix (for tests and ablations).
func (m *Model) Set(name string, w hw.BlockWork) {
	if m.mixes == nil {
		m.mixes = map[string]hw.BlockWork{}
	}
	m.mixes[name] = w
}

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// Default returns the calibrated model, running the micro-kernel profiling
// once per process.
func Default() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = Calibrate(4096, 12345)
	})
	return defaultModel, defaultErr
}

// counter tallies engine events over a whole run.
type counter struct {
	interp.NopObserver
	fp, div, iop, loads, stores float64
}

func (c *counter) Op(cl interp.OpClass, vec interp.VecLevel) {
	switch cl {
	case interp.OpFloat:
		c.fp++
	case interp.OpFloatDiv:
		c.fp++
		c.div++
	case interp.OpInt:
		c.iop++
	}
}

func (c *counter) Access(addr uint64, size int, store bool) {
	if store {
		c.stores++
	} else {
		c.loads++
	}
}

// Calibrate profiles every micro-kernel over iters random inputs and
// returns the per-invocation mixes. The paper's procedure: "we randomly
// generate a sufficient number of input instances, profile dynamic
// instructions for each instance, and average the statistics".
func Calibrate(iters int, seed uint64) (*Model, error) {
	m := &Model{mixes: make(map[string]hw.BlockWork, len(kernels))}
	for name, src := range kernels {
		full := fmt.Sprintf(kernelHarness, iters) + src
		prog, err := minilang.Parse("libmodel/"+name, full)
		if err != nil {
			return nil, fmt.Errorf("libmodel: kernel %s: %v", name, err)
		}
		if err := minilang.Check(prog); err != nil {
			return nil, fmt.Errorf("libmodel: kernel %s: %v", name, err)
		}
		// Baseline run measures harness overhead (kernel body disabled via
		// the "enable" switch) so it can be subtracted.
		over, err := runCount(prog, seed, 0)
		if err != nil {
			return nil, fmt.Errorf("libmodel: kernel %s baseline: %v", name, err)
		}
		full2, err := runCount(prog, seed, 1)
		if err != nil {
			return nil, fmt.Errorf("libmodel: kernel %s: %v", name, err)
		}
		n := float64(iters)
		w := hw.BlockWork{
			FLOPs:  pos(full2.fp-over.fp) / n,
			Divs:   pos(full2.div-over.div) / n,
			IOPs:   pos(full2.iop-over.iop) / n,
			Loads:  pos(full2.loads-over.loads) / n,
			Stores: pos(full2.stores-over.stores) / n,
			DSizeB: 8,
			Vec:    1,
		}
		m.mixes[name] = w
	}
	return m, nil
}

func pos(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func runCount(prog *minilang.Program, seed uint64, enable float64) (*counter, error) {
	c := &counter{}
	e, err := interp.New(prog, &interp.Options{Observer: c, Seed: seed})
	if err != nil {
		return nil, err
	}
	e.Globals["enable"] = enable
	if err := e.Run(); err != nil {
		return nil, err
	}
	return c, nil
}

// kernelHarness drives a kernel: %d iterations over a uniform input stream.
// The kernel defines `func kernel(x: float): float`. With enable=0 the body
// call is skipped, measuring harness overhead for subtraction.
const kernelHarness = `
global enable: float;
global sink: float;
global iters: int = %d;

func main() {
  sink = 0.0;
  for i = 0 .. iters {
    var x: float = 0.0;
    x = rnd();
    if (enable > 0.5) {
      var r: float = 0.0;
      r = kernel(x);
      sink = sink + r;
    } else {
      sink = sink + x;
    }
  }
}

// rnd is a software uniform generator in (0,2), kept out of the measured
// kernel cost by the baseline subtraction (it runs in both configurations).
// It avoids builtins: builtin calls inside kernels would be circular.
global rndstate: float = 0.5;
func rnd(): float {
  var s: float = rndstate * 16807.0 + 0.12345;
  var k: int = s;
  rndstate = s - k;
  return rndstate * 2.0;
}
`

// kernels are the software reference implementations whose instruction
// mixes stand in for libm hardware-counter profiles. Each defines
// kernel(x: float): float using only plain arithmetic (builtins would be
// circular).
var kernels = map[string]string{
	// exp via 12-term Horner polynomial after halving range reduction.
	"exp": `
func kernel(x: float): float {
  var t: float = x / 8.0;
  var acc: float = 1.0 + t / 12.0;
  acc = 1.0 + t / 11.0 * acc;
  acc = 1.0 + t / 10.0 * acc;
  acc = 1.0 + t / 9.0 * acc;
  acc = 1.0 + t / 8.0 * acc;
  acc = 1.0 + t / 7.0 * acc;
  acc = 1.0 + t / 6.0 * acc;
  acc = 1.0 + t / 5.0 * acc;
  acc = 1.0 + t / 4.0 * acc;
  acc = 1.0 + t / 3.0 * acc;
  acc = 1.0 + t / 2.0 * acc;
  acc = 1.0 + t * acc;
  var r: float = acc * acc;
  r = r * r;
  r = r * r;
  return r;
}
`,
	// log via 4 Newton iterations on exp-free quadratic approximation.
	"log": `
func kernel(x: float): float {
  var y: float = x - 1.0;
  var g: float = y;
  for k = 0 .. 4 {
    var e: float = 1.0 + g + g * g / 2.0 + g * g * g / 6.0;
    g = g - (e - x) / e;
  }
  return g;
}
`,
	// sqrt via 5 Newton iterations.
	"sqrt": `
func kernel(x: float): float {
  var g: float = x * 0.5 + 0.5;
  for k = 0 .. 5 {
    g = 0.5 * (g + x / g);
  }
  return g;
}
`,
	// sin via 6-term Taylor with coefficient accumulation.
	"sin": `
func kernel(x: float): float {
  var x2: float = x * x;
  var term: float = x;
  var acc: float = x;
  term = 0.0 - term * x2 / 6.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 20.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 42.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 72.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 110.0;
  acc = acc + term;
  return acc;
}
`,
	// cos shares sin's structure.
	"cos": `
func kernel(x: float): float {
  var x2: float = x * x;
  var term: float = 1.0;
  var acc: float = 1.0;
  term = 0.0 - term * x2 / 2.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 12.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 30.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 56.0;
  acc = acc + term;
  term = 0.0 - term * x2 / 90.0;
  acc = acc + term;
  return acc;
}
`,
	// pow = exp(b*log(a)) at reduced depth.
	"pow": `
func kernel(x: float): float {
  var y: float = x - 1.0;
  var g: float = y;
  for k = 0 .. 3 {
    var e: float = 1.0 + g + g * g / 2.0 + g * g * g / 6.0;
    g = g - (e - x) / e;
  }
  var t: float = g * 1.5 / 8.0;
  var acc: float = 1.0;
  for k = 0 .. 10 {
    acc = 1.0 + t / (10 - k + 1) * acc;
  }
  var r: float = acc * acc;
  r = r * r;
  r = r * r;
  return r;
}
`,
	// rand: linear-congruential arithmetic plus normalization (software
	// modulus: divide, truncate, multiply back).
	"rand": `
func kernel(x: float): float {
  var m: float = 2147483648.0;
  var s: float = x * 1103515245.0 + 12345.0;
  var k: int = s / m;
  s = s - k * m;
  var u: float = s / m;
  s = s * 1103515245.0 + 12345.0;
  k = s / m;
  s = s - k * m;
  u = (u + s / m) * 0.5;
  return u;
}
`,
	// abs, floor, min, max, mod: short branch-and-arithmetic sequences.
	"abs": `
func kernel(x: float): float {
  if (x < 0.0) {
    return 0.0 - x;
  }
  return x;
}
`,
	"floor": `
func kernel(x: float): float {
  var k: int = 0;
  k = x;
  var f: float = k;
  if (f > x) {
    f = f - 1.0;
  }
  return f;
}
`,
	"min": `
func kernel(x: float): float {
  var other: float = 1.0;
  if (x < other) {
    return x;
  }
  return other;
}
`,
	"max": `
func kernel(x: float): float {
  var other: float = 1.0;
  if (x > other) {
    return x;
  }
  return other;
}
`,
	"mod": `
func kernel(x: float): float {
  var d: float = 0.75;
  var q: float = x / d;
  var k: int = 0;
  k = q;
  var f: float = k;
  if (f > q) {
    f = f - 1.0;
  }
  return x - f * d;
}
`,
}
