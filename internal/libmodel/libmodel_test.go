package libmodel

import (
	"math"
	"testing"

	"skope/internal/hw"
)

func TestCalibrateAllKernels(t *testing.T) {
	m, err := Calibrate(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name := range kernels {
		w, err := m.LibWork(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.FLOPs < 0 || w.IOPs < 0 {
			t.Errorf("%s: negative mix %+v", name, w)
		}
		if w.FLOPs+w.IOPs == 0 {
			t.Errorf("%s: empty mix", name)
		}
	}
}

func TestRelativeCosts(t *testing.T) {
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	flops := func(name string) float64 {
		w, err := m.LibWork(name)
		if err != nil {
			t.Fatal(err)
		}
		return w.FLOPs + w.IOPs
	}
	// Transcendentals must be much heavier than trivial functions.
	for _, heavy := range []string{"exp", "log", "sin", "cos", "pow"} {
		for _, light := range []string{"abs", "min", "max", "floor"} {
			if flops(heavy) < 3*flops(light) {
				t.Errorf("%s (%g) not >> %s (%g)", heavy, flops(heavy), light, flops(light))
			}
		}
	}
	// pow (log + exp) should be the heaviest transcendental.
	if flops("pow") < flops("exp") {
		t.Errorf("pow (%g) lighter than exp (%g)", flops("pow"), flops("exp"))
	}
}

// mustModel fetches the calibrated model, failing the test on error.
func mustModel(t *testing.T) *Model {
	t.Helper()
	m, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDivisionsDetected(t *testing.T) {
	m := mustModel(t)
	w, _ := m.LibWork("sqrt")
	if w.Divs == 0 {
		t.Error("sqrt kernel (Newton) should contain divisions")
	}
}

func TestUnknownFunction(t *testing.T) {
	m := mustModel(t)
	if _, err := m.LibWork("fft"); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestSetOverride(t *testing.T) {
	var m Model
	m.Set("custom", hw.BlockWork{FLOPs: 5})
	w, err := m.LibWork("custom")
	if err != nil || w.FLOPs != 5 {
		t.Errorf("Set/LibWork = %+v, %v", w, err)
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	a, err := Calibrate(256, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(256, 99)
	if err != nil {
		t.Fatal(err)
	}
	for name := range kernels {
		wa, _ := a.LibWork(name)
		wb, _ := b.LibWork(name)
		if math.Abs(wa.FLOPs-wb.FLOPs) > 1e-12 {
			t.Errorf("%s: calibration not deterministic: %g vs %g", name, wa.FLOPs, wb.FLOPs)
		}
	}
}

func TestFunctionsList(t *testing.T) {
	m := mustModel(t)
	if len(m.Functions()) != len(kernels) {
		t.Errorf("Functions = %d, want %d", len(m.Functions()), len(kernels))
	}
}

// The model's coverage must include every minilang builtin that the
// simulator charges, so Analyze never fails on a translated workload.
func TestCoversSimulatedBuiltins(t *testing.T) {
	m := mustModel(t)
	for _, name := range []string{"exp", "log", "sqrt", "sin", "cos", "pow", "rand", "abs", "floor", "min", "max", "mod"} {
		if _, err := m.LibWork(name); err != nil {
			t.Errorf("builtin %s unmodeled: %v", name, err)
		}
	}
}
