package pipeline

import (
	"context"
	"fmt"

	"skope/internal/explore"
	"skope/internal/hw"
)

// SweepAdaptive is Sweep's surrogate-guided sibling: instead of
// evaluating every variant, it runs explore.Engine.Adaptive over the grid
// — seed sample, surrogate fit, ranked acquisition rounds — and evaluates
// only the variants the search chose. Every evaluation still flows
// through the exploration engine, so WithJournal, WithStore, WithRetry,
// WithVariantTimeout, WithMinConfidence and WithProgress compose exactly
// as in an exhaustive sweep; round traces arrive on the progress callback
// (Progress.Adaptive) and on aopt.OnRound.
//
// variants must be the materialized grid of axes in explore.Grid.Variants
// order. The returned Evals are index-aligned with the grid, nil where the
// search never evaluated (the common case — typically ≥95% of the grid);
// the AdaptiveResult carries the incumbent, the eval spend, and the round
// trace. Failed variants come back aggregated like Sweep's; cancellation
// returns nil results and the wrapped context error.
//
// Exhaustive Sweep remains the golden reference: the adaptive optimum is
// an exact engine evaluation, but only exhaustive mode proves it global.
func SweepAdaptive(ctx context.Context, run *Run, variants []*hw.Machine, axes []explore.Axis, aopt explore.AdaptiveOptions, opts ...Option) ([]*Eval, *explore.AdaptiveResult, error) {
	o := buildOptions(opts)
	eng, err := Explorer(run, opts...)
	if err != nil {
		return nil, nil, err
	}
	res, aerr := eng.Adaptive(ctx, variants, axes, aopt)
	if res == nil {
		return nil, nil, fmt.Errorf("pipeline: adaptive sweep %s: %w", run.Workload.Name, aerr)
	}
	evals := make([]*Eval, len(variants))
	for i, r := range res.Results {
		if r.Machine == nil || r.Analysis == nil {
			continue
		}
		evals[i] = sweepEval(run.Diagnostics, run.Confidence, r, o.crit)
	}
	if aerr != nil {
		return evals, res, fmt.Errorf("pipeline: adaptive sweep %s: %w", run.Workload.Name, aerr)
	}
	return evals, res, nil
}
