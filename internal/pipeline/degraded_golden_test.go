package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/skeleton"
	"skope/internal/workloads"
)

// renderDegraded serializes the stable degradation surface: every
// diagnostic (severity and full text) and the bit-exact confidence score,
// followed by the regular analysis golden.
func renderDegraded(name string, conf float64, diags []guard.Diagnostic, a *hotspot.Analysis) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "confidence %s\n", hexf(conf))
	fmt.Fprintf(&b, "diagnostics %d\n", len(diags))
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s %s\n", d.Severity, d)
	}
	b.Write(renderGolden(name, a))
	return b.Bytes()
}

func checkDegradedGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("degraded analysis %s drifted from %s\n--- want\n%s--- got\n%s",
			name, path, want, got)
	}
}

// TestGoldenDegradedSkeleton pins the lenient pipeline's behavior on a
// truncated skeleton: the first 60%% of sord's generated skeleton lines,
// cut mid-block, parsed leniently, modeled with fallback priors, and
// projected on BGQ. The fixture pins the diagnostics text, the bit-exact
// confidence score, and the surviving blocks' projections.
func TestGoldenDegradedSkeleton(t *testing.T) {
	run := prepared(t, "sord")
	// Cut at 60% of the bytes, mid-line: the severed line becomes a hole
	// node, every block below it is implicitly closed, and the functions
	// past the cut disappear entirely (their call sites degrade to
	// assumed empty calls).
	truncated := run.Skeleton.Text[:len(run.Skeleton.Text)*60/100]

	lim := guard.Default()
	prog, diags := skeleton.ParseLenient("sord-truncated", truncated, lim)
	// No separate ValidateLenient pass: the lenient core.Build runs it and
	// folds the findings into the BET diagnostics, which flow into
	// a.Diagnostics — a second pass here would double every finding.
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatalf("bst: %v", err)
	}
	bet, err := core.Build(context.Background(), tree, run.Skeleton.Input, &core.Options{
		MaxContexts: lim.MaxContexts, MaxNodes: lim.MaxBETNodes, Lenient: true,
	})
	if err != nil {
		t.Fatalf("bet: %v", err)
	}
	a, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), run.Libs)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.Confidence >= 1 {
		t.Errorf("truncated skeleton produced confidence %v, want < 1", a.Confidence)
	}
	if !a.Degraded() {
		t.Error("truncated skeleton analysis not flagged as degraded")
	}
	all := append(append([]guard.Diagnostic{}, diags...), a.Diagnostics...)
	guard.SortDiagnostics(all)
	checkDegradedGolden(t, "degraded-skeleton", renderDegraded("sord-truncated", a.Confidence, all, a))
}

// TestGoldenMissingBranchProfile pins the pipeline's prior fallback when
// the profile loses one branch entry: the lexically first branch site is
// deleted from a measured profile and the workload re-prepared around the
// gap. Translation substitutes the uniform p=0.5 prior, records the
// documented diagnostic, and the confidence drops below 1.
func TestGoldenMissingBranchProfile(t *testing.T) {
	base := prepared(t, "sord")
	if len(base.Profile.Branches) == 0 {
		t.Fatal("sord profile has no branch entries to corrupt")
	}
	keys := make([]string, 0, len(base.Profile.Branches))
	for k := range base.Profile.Branches {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	corrupt := interp.NewProfile()
	for k, v := range base.Profile.Branches {
		if k != keys[0] {
			corrupt.Branches[k] = v
		}
	}
	for k, v := range base.Profile.Loops {
		corrupt.Loops[k] = v
	}

	w, err := workloads.Get("sord", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Prepare(context.Background(), w, WithProfile(corrupt))
	if err != nil {
		t.Fatalf("prepare with corrupt profile: %v", err)
	}
	if !run.Degraded() {
		t.Error("missing branch entry not flagged as degraded")
	}
	if run.Confidence >= 1 {
		t.Errorf("missing branch entry left confidence at %v, want < 1", run.Confidence)
	}
	found := false
	for _, d := range run.Diagnostics {
		if d.Code == "missing-profile" {
			found = true
		}
	}
	if !found {
		t.Errorf("no missing-profile diagnostic, got %v", run.Diagnostics)
	}
	out, err := Sweep(context.Background(), run, []*hw.Machine{hw.BGQ()})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	checkDegradedGolden(t, "degraded-profile", renderDegraded("sord-missing-branch", run.Confidence, run.Diagnostics, out[0].Analysis))
}

// TestStrictLenientParity verifies the acceptance bar for lenient mode:
// on every intact built-in workload the lenient pipeline produces the
// same diagnostics, bit-identical confidence, and bit-identical projected
// numbers as the strict one — and on workloads with no degradations at
// all, exactly confidence 1.0 and zero diagnostics.
func TestStrictLenientParity(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			strict := prepared(t, name)
			w, err := workloads.Get(name, workloads.ScaleTest)
			if err != nil {
				t.Fatal(err)
			}
			lenient, err := Prepare(context.Background(), w, WithLenient(true))
			if err != nil {
				t.Fatalf("lenient prepare: %v", err)
			}
			if math.Float64bits(lenient.Confidence) != math.Float64bits(strict.Confidence) {
				t.Errorf("confidence: lenient %v, strict %v", lenient.Confidence, strict.Confidence)
			}
			if got, want := fmt.Sprint(lenient.Diagnostics), fmt.Sprint(strict.Diagnostics); got != want {
				t.Errorf("diagnostics: lenient %s, strict %s", got, want)
			}
			if len(strict.Diagnostics) == 0 {
				if lenient.Confidence != 1 {
					t.Errorf("clean workload: lenient confidence %v, want exactly 1", lenient.Confidence)
				}
				if len(lenient.Diagnostics) != 0 {
					t.Errorf("clean workload: lenient diagnostics %v, want none", lenient.Diagnostics)
				}
			}
			sa, err := Sweep(context.Background(), strict, []*hw.Machine{hw.BGQ()})
			if err != nil {
				t.Fatal(err)
			}
			la, err := Sweep(context.Background(), lenient, []*hw.Machine{hw.BGQ()})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(renderGolden(name, la[0].Analysis), renderGolden(name, sa[0].Analysis)) {
				t.Errorf("lenient analysis differs from strict:\n--- strict\n%s--- lenient\n%s",
					renderGolden(name, sa[0].Analysis), renderGolden(name, la[0].Analysis))
			}
			if math.Float64bits(la[0].Analysis.Confidence) != math.Float64bits(sa[0].Analysis.Confidence) {
				t.Errorf("analysis confidence: lenient %v, strict %v", la[0].Analysis.Confidence, sa[0].Analysis.Confidence)
			}
		})
	}
}
