package pipeline

import (
	"fmt"
	"sync"

	"skope/internal/hotspot"
	"skope/internal/hw"
)

// EvaluateMany projects a prepared workload onto several machines
// concurrently, one goroutine per machine. Preparation (the profiling run)
// is shared and machine independent; each evaluation touches only its own
// analysis and simulator state, so the fan-out is embarrassingly parallel.
// Results are returned in the order of machines; the first error wins.
func EvaluateMany(run *Run, machines []*hw.Machine, crit hotspot.Criteria) ([]*Eval, error) {
	evals := make([]*Eval, len(machines))
	errs := make([]error, len(machines))
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m *hw.Machine) {
			defer wg.Done()
			evals[i], errs[i] = Evaluate(run, m, crit)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: machine %s: %v", machines[i].Name, err)
		}
	}
	return evals, nil
}

// Sweep projects a prepared workload over a set of machine variants purely
// analytically (no simulation), concurrently — the co-design design-space
// exploration loop. The returned analyses are index-aligned with the
// variants.
func Sweep(run *Run, variants []*hw.Machine) ([]*hotspot.Analysis, error) {
	out := make([]*hotspot.Analysis, len(variants))
	errs := make([]error, len(variants))
	var wg sync.WaitGroup
	for i, m := range variants {
		wg.Add(1)
		go func(i int, m *hw.Machine) {
			defer wg.Done()
			if err := m.Validate(); err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = hotspot.Analyze(run.BET, hw.NewModel(m), run.Libs)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: variant %d (%s): %v", i, variants[i].Name, err)
		}
	}
	return out, nil
}
