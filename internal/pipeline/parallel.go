package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/resilience"
)

// EvaluateMany projects a prepared workload onto several machines through
// a bounded worker pool (WithWorkers, default runtime.GOMAXPROCS).
// Preparation (the profiling run) is shared and machine independent; each
// evaluation touches only its own analysis and simulator state, so the
// fan-out is embarrassingly parallel. Results are returned in the order of
// machines.
//
// Machine failures are isolated: a machine that fails validation, modeling,
// simulation — or panics — leaves a nil at its index, and the failures come
// back joined into one error naming each machine, alongside the healthy
// evaluations. Transient failures (recovered panics, per-machine timeouts
// under WithVariantTimeout) are retried per WithRetry before counting as
// failed; validation rejections are deterministic and never retried. Only
// canceling ctx discards results, returning ctx's error wrapped.
func EvaluateMany(ctx context.Context, run *Run, machines []*hw.Machine, opts ...Option) ([]*Eval, error) {
	o := buildOptions(opts)
	workers := o.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}
	if workers < 1 {
		workers = 1
	}

	evals := make([]*Eval, len(machines))
	errs := make([]error, len(machines))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ev, attempts, err := evaluateResilient(ctx, run, machines[i], o, opts)
				if err != nil {
					if ctx.Err() != nil && errors.Is(err, context.Canceled) {
						// Sweep-level cancellation, not a machine failure.
						return
					}
					if attempts > 1 {
						errs[i] = fmt.Errorf("pipeline: machine %s (%d attempts): %w", machines[i].Name, attempts, err)
					} else {
						errs[i] = fmt.Errorf("pipeline: machine %s: %w", machines[i].Name, err)
					}
					continue
				}
				evals[i] = ev
			}
		}()
	}
feed:
	for i := range machines {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate many %s: %w", run.Workload.Name, err)
	}
	return evals, errors.Join(errs...)
}

// evaluateResilient is one machine's evaluation under the retry policy
// and per-attempt deadline of EvaluateMany. Validation is checked once up
// front and marked permanent — re-evaluating a machine that cannot exist
// is pure waste. A per-attempt deadline is enforced with a child context
// (every pipeline stage honors cancellation); its expiry is rewrapped as
// resilience.ErrAttemptTimeout so the classifier can tell a slow attempt
// (transient, retry) from a canceled sweep (permanent, stop).
func evaluateResilient(ctx context.Context, run *Run, m *hw.Machine, o options, opts []Option) (*Eval, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 1, resilience.Permanent(err)
	}
	var ev *Eval
	attempts, err := o.retry.Do(ctx, func(int) error {
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if o.timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, o.timeout)
		}
		defer cancel()
		var aerr error
		ev, aerr = Evaluate(actx, run, m, opts...)
		if aerr != nil && errors.Is(aerr, context.DeadlineExceeded) && ctx.Err() == nil {
			aerr = fmt.Errorf("%w (limit %v): %w", resilience.ErrAttemptTimeout, o.timeout, aerr)
		}
		return aerr
	})
	if err != nil {
		return nil, attempts, err
	}
	return ev, attempts, nil
}

// Explorer builds a design-space exploration engine over the prepared
// workload's BET and library model — the entry point for co-design studies
// that need the engine's streaming or cache-statistics API directly.
// WithModelFunc, WithWorkers, WithProgress, WithRetry, WithVariantTimeout
// and WithJournal carry over.
func Explorer(run *Run, opts ...Option) (*explore.Engine, error) {
	o := buildOptions(opts)
	eopts := []explore.Option{
		explore.ModelFunc(o.modelFunc),
		explore.Workers(o.workers),
		explore.Retry(o.retry),
		explore.VariantTimeout(o.timeout),
	}
	if o.progress != nil {
		eopts = append(eopts, explore.OnProgress(o.progress))
	}
	if o.minConf > 0 {
		eopts = append(eopts, explore.MinConfidence(o.minConf))
	}
	if o.jnl != nil {
		eopts = append(eopts, explore.Journal(o.jnl))
	}
	eng, err := explore.New(run.BET, run.Libs, eopts...)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", run.Workload.Name, err)
	}
	return eng, nil
}

// Sweep projects a prepared workload over a set of machine variants purely
// analytically (no simulation) — the co-design design-space exploration
// loop. It runs on the exploration engine: a bounded worker pool with
// memoized per-block characterization, so large grids that vary only a few
// parameters cost a fraction of naive repeated analysis. The returned
// analyses are index-aligned with the variants; failed variants (see
// explore.SweepError) leave nils behind and come back as a wrapped
// aggregate error alongside the healthy analyses.
func Sweep(ctx context.Context, run *Run, variants []*hw.Machine, opts ...Option) ([]*hotspot.Analysis, error) {
	eng, err := Explorer(run, opts...)
	if err != nil {
		return nil, err
	}
	out, err := eng.Sweep(ctx, variants)
	if err != nil {
		return out, fmt.Errorf("pipeline: sweep %s: %w", run.Workload.Name, err)
	}
	return out, nil
}
