package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/resilience"
)

// EvaluateMany projects a prepared workload onto several machines through
// a bounded worker pool (WithWorkers, default runtime.GOMAXPROCS).
// Preparation (the profiling run) is shared and machine independent; each
// evaluation touches only its own analysis and simulator state, so the
// fan-out is embarrassingly parallel. Results are returned in the order of
// machines.
//
// Machine failures are isolated: a machine that fails validation, modeling,
// simulation — or panics — leaves a nil at its index, and the failures come
// back joined into one error naming each machine, alongside the healthy
// evaluations. Transient failures (recovered panics, per-machine timeouts
// under WithVariantTimeout) are retried per WithRetry before counting as
// failed; validation rejections are deterministic and never retried. Only
// canceling ctx discards results, returning ctx's error wrapped.
func EvaluateMany(ctx context.Context, run *Run, machines []*hw.Machine, opts ...Option) ([]*Eval, error) {
	o := buildOptions(opts)
	workers := o.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}
	if workers < 1 {
		workers = 1
	}

	evals := make([]*Eval, len(machines))
	errs := make([]error, len(machines))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ev, attempts, err := evaluateResilient(ctx, run, machines[i], o, opts)
				if err != nil {
					if ctx.Err() != nil && errors.Is(err, context.Canceled) {
						// Sweep-level cancellation, not a machine failure.
						return
					}
					if attempts > 1 {
						errs[i] = fmt.Errorf("pipeline: machine %s (%d attempts): %w", machines[i].Name, attempts, err)
					} else {
						errs[i] = fmt.Errorf("pipeline: machine %s: %w", machines[i].Name, err)
					}
					continue
				}
				evals[i] = ev
			}
		}()
	}
feed:
	for i := range machines {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate many %s: %w", run.Workload.Name, err)
	}
	return evals, errors.Join(errs...)
}

// evaluateResilient is one machine's evaluation under the retry policy
// and per-attempt deadline of EvaluateMany. Validation is checked once up
// front and marked permanent — re-evaluating a machine that cannot exist
// is pure waste. A per-attempt deadline is enforced with a child context
// (every pipeline stage honors cancellation); its expiry is rewrapped as
// resilience.ErrAttemptTimeout so the classifier can tell a slow attempt
// (transient, retry) from a canceled sweep (permanent, stop).
func evaluateResilient(ctx context.Context, run *Run, m *hw.Machine, o options, opts []Option) (*Eval, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 1, resilience.Permanent(err)
	}
	var ev *Eval
	attempts, err := o.retry.Do(ctx, func(int) error {
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if o.timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, o.timeout)
		}
		defer cancel()
		var aerr error
		ev, aerr = Evaluate(actx, run, m, opts...)
		if aerr != nil && errors.Is(aerr, context.DeadlineExceeded) && ctx.Err() == nil {
			aerr = fmt.Errorf("%w (limit %v): %w", resilience.ErrAttemptTimeout, o.timeout, aerr)
		}
		return aerr
	})
	if err != nil {
		return nil, attempts, err
	}
	return ev, attempts, nil
}

// Explorer builds a design-space exploration engine over the prepared
// workload's BET and library model — the entry point for co-design studies
// that need the engine's streaming or cache-statistics API directly.
// WithModelFunc, WithWorkers, WithProgress, WithRetry, WithVariantTimeout,
// WithJournal and WithStore carry over (the store is keyed under this
// configuration's criteria, lenient flag, and confidence floor).
func Explorer(run *Run, opts ...Option) (*explore.Engine, error) {
	o := buildOptions(opts)
	eopts := []explore.Option{
		explore.ModelFunc(o.modelFunc),
		explore.Workers(o.workers),
		explore.Retry(o.retry),
		explore.VariantTimeout(o.timeout),
	}
	if o.progress != nil {
		eopts = append(eopts, explore.OnProgress(o.progress))
	}
	if o.minConf > 0 {
		eopts = append(eopts, explore.MinConfidence(o.minConf))
	}
	if o.jnl != nil {
		eopts = append(eopts, explore.Journal(o.jnl))
	}
	if o.storeUsable() {
		eopts = append(eopts, explore.CAS(o.st, o.modeDigest()))
	}
	eng, err := explore.New(run.BET, run.Libs, eopts...)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", run.Workload.Name, err)
	}
	return eng, nil
}

// Sweep projects a prepared workload over a set of machine variants purely
// analytically (no simulation) — the co-design design-space exploration
// loop. It runs on the exploration engine: a bounded worker pool with
// memoized per-block characterization, plus the sweep journal (WithJournal)
// and the content-addressed store (WithStore) as zero-recompute sources.
//
// It returns the unified Eval type: per variant, the analysis, the hot-spot
// selection under this configuration's criteria, the merged diagnostics,
// the end-to-end confidence, and the provenance (computed, journal, store).
// The measured fields (Sim, Modl/Prof, quality, HotPath) stay zero — sweeps
// never simulate — so cached and computed sweep results are interchangeable.
// Evals are index-aligned with the variants; failed variants (see
// explore.SweepError) leave nils behind and come back as a wrapped
// aggregate error alongside the healthy evaluations. Cancellation (the only
// way to lose healthy results) returns nil evaluations and the wrapped
// context error.
func Sweep(ctx context.Context, run *Run, variants []*hw.Machine, opts ...Option) ([]*Eval, error) {
	o := buildOptions(opts)
	eng, err := Explorer(run, opts...)
	if err != nil {
		return nil, err
	}
	evals := make([]*Eval, len(variants))
	var failures []*explore.VariantError
	results, wait := eng.Stream(ctx, variants)
	for r := range results {
		if r.Err != nil {
			var ve *explore.VariantError
			if !errors.As(r.Err, &ve) {
				ve = &explore.VariantError{Index: r.Index, Machine: r.Machine, MachineName: r.Machine.Name, Err: r.Err}
			}
			failures = append(failures, ve)
			continue
		}
		evals[r.Index] = sweepEval(run.Diagnostics, run.Confidence, r, o.crit)
	}
	werr := wait()
	if werr != nil && (errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded)) {
		return nil, fmt.Errorf("pipeline: sweep %s: %w", run.Workload.Name, werr)
	}
	var errs []error
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
		errs = append(errs, &explore.SweepError{Variants: failures})
	}
	if werr != nil {
		// Journal or store degradation: results are complete, only
		// durability/cache coverage is partial.
		errs = append(errs, werr)
	}
	if err := errors.Join(errs...); err != nil {
		return evals, fmt.Errorf("pipeline: sweep %s: %w", run.Workload.Name, err)
	}
	return evals, nil
}

// sweepEval assembles the unified Eval for one analytical sweep result:
// selection under the configured criteria, preparation + analysis
// diagnostics merged, end-to-end confidence, provenance from the result's
// source flags. Shared by Sweep and the daemon's session runner.
func sweepEval(prepDiags []guard.Diagnostic, prepConf float64, r explore.Result, crit hotspot.Criteria) *Eval {
	a := r.Analysis
	diags := make([]guard.Diagnostic, 0, len(prepDiags)+len(a.Diagnostics))
	diags = append(diags, prepDiags...)
	diags = append(diags, a.Diagnostics...)
	guard.SortDiagnostics(diags)
	conf := prepConf
	if a.Confidence < conf {
		conf = a.Confidence
	}
	prov := Computed
	switch {
	case r.Replayed:
		prov = FromJournal
	case r.Stored:
		prov = FromStore
	}
	return &Eval{
		Machine:     r.Machine,
		Analysis:    a,
		Selection:   hotspot.Select(a, crit),
		Diagnostics: diags,
		Confidence:  conf,
		Provenance:  prov,
	}
}

// SweepAnalyses is the pre-unification Sweep: bare analyses, no selection,
// diagnostics, confidence, or provenance.
//
// Deprecated: use Sweep, which returns the unified *Eval (carrying the
// same Analysis plus selection, degradation state, and provenance), or
// Explorer for direct engine access. SweepAnalyses remains only as a
// migration shim and will be removed.
func SweepAnalyses(ctx context.Context, run *Run, variants []*hw.Machine, opts ...Option) ([]*hotspot.Analysis, error) {
	eng, err := Explorer(run, opts...)
	if err != nil {
		return nil, err
	}
	out, err := eng.Sweep(ctx, variants)
	if err != nil {
		return out, fmt.Errorf("pipeline: sweep %s: %w", run.Workload.Name, err)
	}
	return out, nil
}
