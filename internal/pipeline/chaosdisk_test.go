package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/iofault"
	"skope/internal/journal"
	"skope/internal/store"
	"skope/internal/workloads"
)

// The chaos-disk suite drives the pipeline's durability layers (sweep
// journal and content-addressed store) through iofault's scriptable disk:
// a failing fsync, a disk that runs out of space mid-sweep, a torn final
// record, and an open that returns EIO. The invariant under test is zero
// silent corruption: every sweep either produces results bit-identical to
// a fault-free golden or reports the degradation explicitly
// (explore.ErrJournalDegraded / store.ErrDegraded) — never wrong numbers,
// and a resume on healed hardware recomputes only what the fault lost.

// chaosDiskGrid is the sweep grid every scenario runs: mem-bandwidth
// {16, 32} x freq-ghz {1.6, 2.4} over the BG/Q base.
func chaosDiskGrid() []*hw.Machine {
	var out []*hw.Machine
	for _, bw := range []float64{16, 32} {
		for _, f := range []float64{1.6, 2.4} {
			m := hw.BGQ()
			m.Name = fmt.Sprintf("bw%g-f%g", bw, f)
			m.MemBandwidthGBs = bw
			m.FreqGHz = f
			out = append(out, m)
		}
	}
	return out
}

// chaosDiskGolden caches the fault-free reference sweep per workload so
// the four scenarios compare against one golden instead of recomputing it.
var (
	chaosDiskGoldenMu sync.Mutex
	chaosDiskGoldens  = map[string][]*Eval{}
)

func chaosDiskGolden(t *testing.T, name string) []*Eval {
	t.Helper()
	chaosDiskGoldenMu.Lock()
	defer chaosDiskGoldenMu.Unlock()
	if g, ok := chaosDiskGoldens[name]; ok {
		return g
	}
	g, err := Sweep(context.Background(), prepared(t, name), chaosDiskGrid())
	if err != nil {
		t.Fatalf("golden sweep %s: %v", name, err)
	}
	chaosDiskGoldens[name] = g
	return g
}

// assertEvalsBitIdentical fails unless every variant's analysis matches
// the golden bit for bit (encoded bytes and the raw TotalTime pattern).
func assertEvalsBitIdentical(t *testing.T, got, want []*Eval) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d evals != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] == nil || want[i] == nil {
			t.Fatalf("variant %d: nil eval (got %v, want %v)", i, got[i] == nil, want[i] == nil)
		}
		if math.Float64bits(got[i].Analysis.TotalTime) != math.Float64bits(want[i].Analysis.TotalTime) {
			t.Fatalf("variant %d: TotalTime %v != %v", i, got[i].Analysis.TotalTime, want[i].Analysis.TotalTime)
		}
		ge, err := hotspot.EncodeAnalysis(got[i].Analysis)
		if err != nil {
			t.Fatal(err)
		}
		we, err := hotspot.EncodeAnalysis(want[i].Analysis)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ge, we) {
			t.Fatalf("variant %d: analysis not bit-identical to the fault-free golden", i)
		}
	}
}

// assertProvenancePrefix fails unless the first n evals were served from
// source and the rest were recomputed — the "resume recomputes only the
// lost suffix" contract (sweeps run with Workers(1), so the durable
// prefix is exactly the first n variants).
func assertProvenancePrefix(t *testing.T, evals []*Eval, n int, source Provenance) {
	t.Helper()
	for i, ev := range evals {
		want := Computed
		if i < n {
			want = source
		}
		if ev.Provenance != want {
			t.Errorf("variant %d: provenance %v, want %v (durable prefix %d)", i, ev.Provenance, want, n)
		}
	}
}

// TestChaosDiskFsyncFailure: the journal's fsync starts failing mid-sweep.
// The sweep must complete with every analysis intact and bit-identical,
// reporting explore.ErrJournalDegraded — and a resume on healed disk
// replays the durable prefix, recomputing only what was never acknowledged.
func TestChaosDiskFsyncFailure(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			variants := chaosDiskGrid()
			want := chaosDiskGolden(t, name)
			path := filepath.Join(t.TempDir(), "sweep.journal")

			// Sync 1 = journal header; syncs 2-3 = records; sync 4 (the
			// third record's) fails, so exactly 2 records are durable.
			ff := iofault.New(nil, iofault.Plan{FailSyncAt: 4})
			j, err := journal.OpenFS(ff, path)
			if err != nil {
				t.Fatal(err)
			}
			got, serr := Sweep(context.Background(), run, variants, WithJournal(j), WithWorkers(1))
			j.Close()
			if !errors.Is(serr, explore.ErrJournalDegraded) {
				t.Fatalf("sweep with failing fsync = %v; want ErrJournalDegraded", serr)
			}
			if errors.Is(serr, context.Canceled) {
				t.Fatalf("degradation reported as cancellation: %v", serr)
			}
			// The degradation cost durability, never correctness.
			assertEvalsBitIdentical(t, got, want)

			// Healed disk: the rollback removed the unacknowledged record,
			// so the journal reopens clean with the 2 durable records.
			j2, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if n, torn := j2.Recovered(); n != 2 || torn {
				t.Fatalf("Recovered = (%d, %v); want (2, false)", n, torn)
			}
			resumed, err := Sweep(context.Background(), run, variants, WithJournal(j2), WithWorkers(1))
			if err != nil {
				t.Fatalf("resumed sweep: %v", err)
			}
			assertEvalsBitIdentical(t, resumed, want)
			assertProvenancePrefix(t, resumed, 2, FromJournal)
		})
	}
}

// TestChaosDiskENOSPCStore: the store's disk fills mid-sweep. The sweep
// completes degraded (store.ErrDegraded wrapping ENOSPC) with intact
// results; once space is back, a rerun is served the persisted prefix
// from the store and recomputes only the lost suffix.
func TestChaosDiskENOSPCStore(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			variants := chaosDiskGrid()
			want := chaosDiskGolden(t, name)
			dir := t.TempDir()

			// Probe the on-disk cost of the header alone and of a full
			// sweep, then budget the faulty disk for roughly half the
			// records.
			probeEmpty := filepath.Join(dir, "empty.store")
			se, err := store.Open(probeEmpty)
			if err != nil {
				t.Fatal(err)
			}
			se.Close()
			probeFull := filepath.Join(dir, "full.store")
			sf, err := store.Open(probeFull)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Sweep(context.Background(), run, variants, WithStore(sf), WithWorkers(1)); err != nil {
				t.Fatal(err)
			}
			sf.Close()
			emptySize, fullSize := fileSize(t, probeEmpty), fileSize(t, probeFull)

			path := filepath.Join(dir, "cas.store")
			ff := iofault.New(nil, iofault.Plan{ByteBudget: (emptySize + fullSize) / 2})
			st, err := store.OpenFS(ff, path)
			if err != nil {
				t.Fatal(err)
			}
			got, serr := Sweep(context.Background(), run, variants, WithStore(st), WithWorkers(1))
			st.Close()
			if !errors.Is(serr, store.ErrDegraded) || !errors.Is(serr, syscall.ENOSPC) {
				t.Fatalf("sweep on full disk = %v; want ErrDegraded wrapping ENOSPC", serr)
			}
			assertEvalsBitIdentical(t, got, want)

			// Space is back: the persisted prefix serves from the store,
			// only the suffix recomputes.
			s2, err := store.Open(path)
			if err != nil {
				t.Fatalf("reopen after ENOSPC: %v", err)
			}
			defer s2.Close()
			persisted := s2.Len()
			if persisted <= 0 || persisted >= len(variants) {
				t.Fatalf("store holds %d of %d records; the budget did not land mid-sweep", persisted, len(variants))
			}
			resumed, err := Sweep(context.Background(), run, variants, WithStore(s2), WithWorkers(1))
			if err != nil {
				t.Fatalf("rerun on healed disk: %v", err)
			}
			assertEvalsBitIdentical(t, resumed, want)
			assertProvenancePrefix(t, resumed, persisted, FromStore)
		})
	}
}

// TestChaosDiskTornFinalRecord: a write fails half-way through the final
// journal append and the rollback truncate is blocked too, leaving a torn
// frame on disk. The sweep stays correct and reports the degradation;
// reopening recovers the intact prefix (discarding the tear) and a resume
// recomputes only the torn-off suffix.
func TestChaosDiskTornFinalRecord(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			variants := chaosDiskGrid()
			want := chaosDiskGolden(t, name)
			path := filepath.Join(t.TempDir(), "sweep.journal")

			// Write 1 = header, writes 2-4 = records; write 5 (the final
			// record) tears and the rollback truncate fails.
			ff := iofault.New(nil, iofault.Plan{FailWriteAt: 5, ShortWrite: true, FailTruncate: true})
			j, err := journal.OpenFS(ff, path)
			if err != nil {
				t.Fatal(err)
			}
			got, serr := Sweep(context.Background(), run, variants, WithJournal(j), WithWorkers(1))
			j.Close()
			if !errors.Is(serr, explore.ErrJournalDegraded) || !errors.Is(serr, syscall.EIO) {
				t.Fatalf("sweep with torn append = %v; want ErrJournalDegraded wrapping EIO", serr)
			}
			assertEvalsBitIdentical(t, got, want)

			// Recovery discards the torn frame and keeps the 3 intact
			// records.
			j2, err := journal.Open(path)
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			defer j2.Close()
			if n, torn := j2.Recovered(); n != 3 || !torn {
				t.Fatalf("Recovered = (%d, %v); want (3, true)", n, torn)
			}
			resumed, err := Sweep(context.Background(), run, variants, WithJournal(j2), WithWorkers(1))
			if err != nil {
				t.Fatalf("resumed sweep: %v", err)
			}
			assertEvalsBitIdentical(t, resumed, want)
			assertProvenancePrefix(t, resumed, 3, FromJournal)
		})
	}
}

// TestChaosDiskReopenEIO: a journal whose open fails surfaces an explicit
// error — never a silently empty journal that would quietly recompute a
// finished sweep. Once the fault clears, the resume replays everything
// with zero recomputation.
func TestChaosDiskReopenEIO(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			variants := chaosDiskGrid()
			want := chaosDiskGolden(t, name)
			path := filepath.Join(t.TempDir(), "sweep.journal")

			j, err := journal.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Sweep(context.Background(), run, variants, WithJournal(j), WithWorkers(1)); err != nil {
				t.Fatal(err)
			}
			j.Close()

			ff := iofault.New(nil, iofault.Plan{FailOpenAt: 1})
			if _, err := journal.OpenFS(ff, path); !errors.Is(err, iofault.ErrInjected) {
				t.Fatalf("faulty reopen = %v; want an explicit injected error", err)
			}

			// The fault clears; every variant replays, none recompute.
			var mu sync.Mutex
			evaluated := 0
			disarm := guard.Arm("explore.evaluate", func(string) {
				mu.Lock()
				evaluated++
				mu.Unlock()
			})
			t.Cleanup(disarm)
			j2, err := journal.Open(path)
			if err != nil {
				t.Fatalf("clean reopen: %v", err)
			}
			defer j2.Close()
			if n, torn := j2.Recovered(); n != len(variants) || torn {
				t.Fatalf("Recovered = (%d, %v); want (%d, false)", n, torn, len(variants))
			}
			resumed, err := Sweep(context.Background(), run, variants, WithJournal(j2), WithWorkers(1))
			if err != nil {
				t.Fatalf("resumed sweep: %v", err)
			}
			assertEvalsBitIdentical(t, resumed, want)
			assertProvenancePrefix(t, resumed, len(variants), FromJournal)
			mu.Lock()
			defer mu.Unlock()
			if evaluated != 0 {
				t.Errorf("fully journaled resume recomputed %d variants", evaluated)
			}
		})
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
