package pipeline

import (
	"context"
	"math"
	"strings"
	"testing"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/minilang"
	"skope/internal/workloads"
)

// distSrc is a distributed-style minilang workload using the exchange()
// communication primitive; it validates the multi-node modeling extension
// end to end: translator emits a comm statement, the model charges the
// interconnect, and the simulator attributes the same phase to the same
// block ID.
const distSrc = `
global n: int = 96;
global planes: int = 8;
global nt: int = 6;
global u: [planes][n][n]float;

func main() {
  for t = 0 .. nt {
    sweep();
    exchange(2 * n * n * 8, 2);
  }
}

func sweep() {
  for k = 1 .. planes - 1 {
    for i = 1 .. n - 1 {
      for j = 1 .. n - 1 {
        u[k][i][j] = u[k][i][j] * 0.5 + (u[k][i-1][j] + u[k][i+1][j] + u[k][i][j-1] + u[k][i][j+1]) * 0.125;
      }
    }
  }
}
`

func TestExchangeEndToEnd(t *testing.T) {
	run, err := Prepare(context.Background(), &workloads.Workload{Name: "dist", Source: distSrc, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(run.Skeleton.Text, "comm bytes=((2 * n) * n) * 8") &&
		!strings.Contains(run.Skeleton.Text, "comm bytes=") {
		t.Fatalf("translator lost exchange:\n%s", run.Skeleton.Text)
	}
	ev, err := Evaluate(context.Background(), run, hw.BGQ(), WithCriteria(hotspot.ScaledCriteria()))
	if err != nil {
		t.Fatal(err)
	}
	const commID = "main/comm@L10"
	mT, ok := ev.Modl.ByID[commID]
	if !ok {
		t.Fatalf("model missing comm block; model blocks: %v", ev.Modl.TopIDs(10))
	}
	sT, ok := ev.Prof.ByID[commID]
	if !ok {
		t.Fatalf("sim missing comm block; measured blocks: %v", ev.Prof.TopIDs(10))
	}
	// Both sides charge the same interconnect model for the same volume:
	// the comm block's absolute time must agree closely (the rest of the
	// profile diverges through caches etc., so compare the block itself).
	if rel := math.Abs(mT-sT) / sT; rel > 0.05 {
		t.Errorf("comm time disagrees: model %g vs sim %g (rel %.3f)", mT, sT, rel)
	}
	if ev.Quality < 0.8 {
		t.Errorf("distributed workload quality = %.3f", ev.Quality)
	}
}

func TestExchangeOnlyStatementPosition(t *testing.T) {
	bad := "func main() { var x: float = 0.0; x = exchange(8, 1) + 1.0; }"
	prog, err := minilang.Parse("bad", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err == nil {
		t.Error("nested exchange accepted")
	}
}
