package pipeline

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden analysis fixtures")

// goldenTopBlocks is how many leading blocks of each analysis the fixture
// pins. Ten matches the paper's top-10 ranked views.
const goldenTopBlocks = 10

// hexf renders a float bit-exactly ('x' format round-trips every finite
// float64), so the fixtures detect a single-ulp drift in the model.
func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// renderGolden serializes the stable surface of an analysis: the machine
// identity, the projected total, and the top blocks' identity, ordering,
// times and roofline verdicts.
func renderGolden(name string, a *hotspot.Analysis) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "workload %s\n", name)
	fmt.Fprintf(&b, "machine %s fingerprint %s\n", a.Machine.Name, a.Machine.Fingerprint())
	fmt.Fprintf(&b, "blocks %d static-insts %d\n", len(a.Blocks), a.TotalStaticInsts)
	fmt.Fprintf(&b, "total-time %s\n", hexf(a.TotalTime))
	n := goldenTopBlocks
	if n > len(a.Blocks) {
		n = len(a.Blocks)
	}
	for i := 0; i < n; i++ {
		blk := a.Blocks[i]
		fmt.Fprintf(&b, "block %d %s T %s Tc %s Tm %s membound %v\n",
			i, blk.BlockID, hexf(blk.T), hexf(blk.Tc), hexf(blk.Tm), blk.MemoryBound)
	}
	return b.Bytes()
}

// TestGoldenAnalyses pins the analytical model's output for every built-in
// workload on the BGQ machine to checked-in fixtures. Any change to the
// translator, profiler, roofline model or hot-spot ordering that perturbs
// a projected time by even one ulp fails here; regenerate deliberately
// with:
//
//	go test ./internal/pipeline/ -run TestGoldenAnalyses -update
func TestGoldenAnalyses(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			out, err := Sweep(context.Background(), run, []*hw.Machine{hw.BGQ()})
			if err != nil {
				t.Fatalf("analyze %s: %v", name, err)
			}
			got := renderGolden(name, out[0].Analysis)
			path := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (regenerate with -update): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("analysis of %s drifted from %s\n--- want\n%s--- got\n%s",
					name, path, want, got)
			}
		})
	}
}
