package pipeline

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/profile"
	"skope/internal/workloads"
)

// prepare caches prepared runs across tests (preparation includes a full
// profiling execution).
var runCache = map[string]*Run{}

func prepared(t *testing.T, name string) *Run {
	t.Helper()
	if r, ok := runCache[name]; ok {
		return r
	}
	r, err := PrepareByName(context.Background(), name, workloads.ScaleTest)
	if err != nil {
		t.Fatalf("prepare %s: %v", name, err)
	}
	runCache[name] = r
	return r
}

func TestPrepareAllBenchmarks(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := prepared(t, name)
			if run.BET.NumNodes() == 0 {
				t.Fatal("empty BET")
			}
			// The paper's §IV-B size claim: BET stays within 2x of source.
			if r := run.BET.SizeRatio(); r <= 0 || r > 2 {
				t.Errorf("BET size ratio = %g, want (0, 2]", r)
			}
			if len(run.Profile.Loops) == 0 {
				t.Error("profiler saw no loops")
			}
		})
	}
}

func TestEvaluateSORDOnBothMachines(t *testing.T) {
	run := prepared(t, "sord")
	crit := hotspot.DefaultCriteria()
	for _, m := range []*hw.Machine{hw.BGQ(), hw.XeonE5()} {
		ev, err := Evaluate(context.Background(), run, m, WithCriteria(crit))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(ev.Selection.Spots) == 0 {
			t.Fatalf("%s: empty selection", m.Name)
		}
		// The headline claim: selection quality >= 0.80 in all cases.
		if ev.Quality < 0.80 {
			t.Errorf("%s: selection quality = %.3f, want >= 0.80\nmodel:\n%s\nmeasured:\n%s",
				m.Name, ev.Quality, ev.Modl, ev.Prof)
		}
		if ev.HotPath.Root == nil {
			t.Errorf("%s: empty hot path", m.Name)
		}
	}
}

func TestEvaluateAllQualityFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-benchmark evaluation in -short mode")
	}
	crit := hotspot.ScaledCriteria()
	total := 0.0
	n := 0
	for _, name := range workloads.Names() {
		run := prepared(t, name)
		for _, m := range []*hw.Machine{hw.BGQ(), hw.XeonE5()} {
			ev, err := Evaluate(context.Background(), run, m, WithCriteria(crit))
			if err != nil {
				t.Fatalf("%s on %s: %v", name, m.Name, err)
			}
			if ev.Quality < 0.80 {
				t.Errorf("%s on %s: quality %.3f < 0.80\nmodel:\n%s\nmeasured:\n%s",
					name, m.Name, ev.Quality, ev.Modl, ev.Prof)
			}
			total += ev.Quality
			n++
		}
	}
	avg := total / float64(n)
	t.Logf("average selection quality over %d cases: %.3f", n, avg)
	// The paper reports 0.958 average; require a solid floor.
	if avg < 0.90 {
		t.Errorf("average quality %.3f < 0.90", avg)
	}
}

func TestCrossMachineHotSpotsDiffer(t *testing.T) {
	// The paper's §I observation on SORD: the two machines' top-10 hot
	// spot lists differ (only 4 of 10 shared on the real machines), so
	// empirical knowledge is not portable.
	run := prepared(t, "sord")
	q, err := Evaluate(context.Background(), run, hw.BGQ())
	if err != nil {
		t.Fatal(err)
	}
	x, err := Evaluate(context.Background(), run, hw.XeonE5())
	if err != nil {
		t.Fatal(err)
	}
	overlap := profile.TopOverlap(q.Prof.TopIDs(10), x.Prof.TopIDs(10))
	t.Logf("SORD top-10 overlap across machines: %d/10", overlap)
	ordSame := true
	qt, xt := q.Prof.TopIDs(10), x.Prof.TopIDs(10)
	for i := range qt {
		if i < len(xt) && qt[i] != xt[i] {
			ordSame = false
		}
	}
	if ordSame {
		t.Error("identical top-10 ordering on both machines: machines too similar to exercise the paper's claim")
	}
}

func TestEvalSpotIDsOrdered(t *testing.T) {
	run := prepared(t, "chargei")
	ev, err := Evaluate(context.Background(), run, hw.BGQ())
	if err != nil {
		t.Fatal(err)
	}
	ids := ev.SpotIDs()
	if len(ids) != len(ev.Selection.Spots) {
		t.Fatal("SpotIDs length mismatch")
	}
	for i, s := range ev.Selection.Spots {
		if ids[i] != s.BlockID {
			t.Errorf("SpotIDs[%d] = %s != %s", i, ids[i], s.BlockID)
		}
	}
}

func TestAblationModels(t *testing.T) {
	run := prepared(t, "cfd")
	base, err := Evaluate(context.Background(), run, hw.BGQ())
	if err != nil {
		t.Fatal(err)
	}
	divAware, err := Evaluate(context.Background(), run, hw.BGQ(), WithModelFunc(hw.NewDivAwareModel))
	if err != nil {
		t.Fatal(err)
	}
	// The division-aware model must project MORE time for the division
	// block than the paper's base model (which underestimates it).
	velID := findBlock(base.Analysis, "compute_velocity")
	if velID == "" {
		t.Fatalf("velocity block not found; blocks: %v", base.Modl.TopIDs(10))
	}
	baseT := base.Analysis.ByID[velID].T
	divT := divAware.Analysis.ByID[velID].T
	if divT <= baseT {
		t.Errorf("div-aware projection (%g) not > base (%g) for %s", divT, baseT, velID)
	}
}

func findBlock(a *hotspot.Analysis, funcName string) string {
	for _, b := range a.Blocks {
		if b.FuncName == funcName && !b.IsLib {
			return b.BlockID
		}
	}
	return ""
}

func TestEvaluateManyMatchesSequential(t *testing.T) {
	run := prepared(t, "srad")
	crit := hotspot.ScaledCriteria()
	machines := []*hw.Machine{hw.BGQ(), hw.XeonE5()}
	par, err := EvaluateMany(context.Background(), run, machines, WithCriteria(crit))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range machines {
		seq, err := Evaluate(context.Background(), run, m, WithCriteria(crit))
		if err != nil {
			t.Fatal(err)
		}
		if par[i].Quality != seq.Quality {
			t.Errorf("%s: parallel quality %g != sequential %g", m.Name, par[i].Quality, seq.Quality)
		}
		if got, want := par[i].Modl.TopIDs(5), seq.Modl.TopIDs(5); len(got) == len(want) {
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("%s: rank %d differs: %s vs %s", m.Name, j, got[j], want[j])
				}
			}
		}
	}
}

func TestEvaluateManyPropagatesError(t *testing.T) {
	run := prepared(t, "srad")
	bad := hw.BGQ()
	bad.FreqGHz = 0
	if _, err := EvaluateMany(context.Background(), run, []*hw.Machine{hw.XeonE5(), bad}, WithCriteria(hotspot.ScaledCriteria())); err == nil {
		t.Error("invalid machine not reported")
	}
}

func TestSweepParallel(t *testing.T) {
	run := prepared(t, "chargei")
	var variants []*hw.Machine
	for _, bw := range []float64{8, 16, 32, 64} {
		m := hw.BGQ()
		m.Name = "v"
		m.MemBandwidthGBs = bw
		variants = append(variants, m)
	}
	analyses, err := Sweep(context.Background(), run, variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(analyses) != 4 {
		t.Fatalf("got %d analyses", len(analyses))
	}
	for i, a := range analyses {
		if a == nil || a.Analysis.TotalTime <= 0 {
			t.Errorf("variant %d empty", i)
		}
		if a != nil && a.Selection == nil {
			t.Errorf("variant %d has no selection", i)
		}
	}
	// Invalid variant rejected.
	bad := hw.BGQ()
	bad.IssueWidth = 0
	if _, err := Sweep(context.Background(), run, []*hw.Machine{bad}); err == nil {
		t.Error("invalid variant accepted")
	}
}

// noLeakedGoroutines waits for the goroutine count to settle back near the
// level observed before the test body ran.
func noLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPrepareStageSentinels(t *testing.T) {
	bad := &workloads.Workload{Name: "broken", Source: "func main( {"}
	_, err := Prepare(context.Background(), bad)
	if err == nil {
		t.Fatal("malformed source accepted")
	}
	if !errors.Is(err, ErrParse) {
		t.Errorf("parse failure not tagged ErrParse: %v", err)
	}
	if errors.Is(err, ErrSimulate) || errors.Is(err, ErrModel) {
		t.Errorf("parse failure tagged with a later stage: %v", err)
	}
}

func TestPrepareCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := workloads.Get("sord", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(ctx, w); !errors.Is(err, context.Canceled) {
		t.Errorf("Prepare on canceled ctx = %v, want context.Canceled in chain", err)
	}
}

func TestEvaluateCanceledContext(t *testing.T) {
	run := prepared(t, "sord")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, run, hw.BGQ()); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate on canceled ctx = %v, want context.Canceled in chain", err)
	}
}

func TestEvaluateManyCanceledContext(t *testing.T) {
	run := prepared(t, "sord")
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	machines := make([]*hw.Machine, 64)
	for i := range machines {
		machines[i] = hw.BGQ()
	}
	start := time.Now()
	_, err := EvaluateMany(ctx, run, machines, WithCriteria(hotspot.ScaledCriteria()))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateMany on canceled ctx = %v, want context.Canceled in chain", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("canceled EvaluateMany took %s, want prompt return", el)
	}
	noLeakedGoroutines(t, before)
}

func TestSweepCanceledMidFlight(t *testing.T) {
	run := prepared(t, "sord")
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A sweep far too large to finish before the progress callback cancels
	// it after the second variant.
	variants := make([]*hw.Machine, 2000)
	for i := range variants {
		m := hw.BGQ()
		m.NetLatencyUs = 1 + float64(i)
		variants[i] = m
	}
	start := time.Now()
	_, err := Sweep(ctx, run, variants,
		WithWorkers(2),
		WithProgress(func(p explore.Progress) {
			if p.Done >= 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Sweep = %v, want context.Canceled in chain", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("canceled Sweep took %s, want prompt return", el)
	}
	noLeakedGoroutines(t, before)
}

func TestAnalysisJSONExport(t *testing.T) {
	run := prepared(t, "cfd")
	ev, err := Evaluate(context.Background(), run, hw.BGQ(), WithCriteria(hotspot.ScaledCriteria()))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ev.Analysis.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := hotspot.ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machine != "BG/Q" || len(rep.Blocks) != len(ev.Analysis.Blocks) {
		t.Errorf("report = %s with %d blocks", rep.Machine, len(rep.Blocks))
	}
	if rep.Blocks[0].Rank != 1 || rep.Blocks[0].Seconds <= 0 {
		t.Errorf("first block = %+v", rep.Blocks[0])
	}
	cum := 0.0
	for _, b := range rep.Blocks {
		cum += b.Coverage
	}
	if cum < 0.999 || cum > 1.001 {
		t.Errorf("coverages sum to %g", cum)
	}
	if _, err := hotspot.ReadReport(strings.NewReader("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}
