package pipeline

import (
	"context"

	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/store"
	"skope/internal/workloads"
)

// SweepSummary reports how a SweepCached run was served.
type SweepSummary struct {
	// Workload and LayoutFingerprint identify what was swept. The
	// fingerprint is the store identity of the workload's prepared model —
	// from the prep record on a warm run, from the fresh preparation
	// otherwise.
	Workload          string
	LayoutFingerprint string
	// Total counts variants; Computed, FromJournal and FromStore partition
	// the successful ones by provenance (failed variants are in none).
	Total, Computed, FromJournal, FromStore int
	// SkippedPrepare marks a fully warm run: every variant was served from
	// the store and the workload was never parsed, profiled, or modeled —
	// zero core.Build calls.
	SkippedPrepare bool
	// Confidence and Diagnostics describe the preparation (replayed from
	// the prep record on a warm run, identical to a cold run's by
	// construction). Per-variant analysis diagnostics live on the Evals.
	Confidence  float64
	Diagnostics []guard.Diagnostic
}

// SweepCached is Sweep with the preparation itself behind the store: it
// sweeps workload w over the variants, serving every piece of work that is
// already content-addressed in st.
//
// On a fully warm run — the store has this workload's prep record and
// every (variant, mode) eval record — the workload is never prepared:
// no parsing, no profiling run, no BET construction (zero core.Build
// calls). The Evals are decoded bit-identically from the store and carry
// the cold run's confidence and diagnostics, replayed from the prep
// record. Anything less than fully warm falls back to Prepare + Sweep with
// the store attached, which serves warm variants individually and writes
// the preparation and fresh results through for the next run.
//
// Configurations the store cannot address (WithModelFunc, WithProfile — a
// foreign model constructor or substituted profile is not part of any
// fingerprint) and nil stores skip the cache entirely and behave like
// Prepare + Sweep.
func SweepCached(ctx context.Context, w *workloads.Workload, variants []*hw.Machine, st *store.Store, opts ...Option) ([]*Eval, *SweepSummary, error) {
	o := buildOptions(opts)
	cacheable := st != nil && !o.customModel && o.prof == nil
	if cacheable {
		if evals, sum := sweepFromStore(w, variants, st, &o); evals != nil {
			return evals, sum, nil
		}
	}

	run, err := Prepare(ctx, w, opts...)
	if err != nil {
		return nil, nil, err
	}
	sum := &SweepSummary{
		Workload:    w.Name,
		Total:       len(variants),
		Confidence:  run.Confidence,
		Diagnostics: run.Diagnostics,
	}
	if l, lerr := run.Layout(); lerr == nil {
		sum.LayoutFingerprint = l.Fingerprint()
		if cacheable {
			// Record the preparation so the next identical sweep can skip
			// it. Best-effort: a store failure costs cache coverage, not
			// the sweep.
			_ = st.PutPrep(store.PrepDigest(w, o.lenient, o.lim), store.Prep{
				LayoutFingerprint: sum.LayoutFingerprint,
				Confidence:        run.Confidence,
				Diagnostics:       run.Diagnostics,
			})
		}
	}
	if cacheable {
		opts = append(opts, WithStore(st))
	}
	evals, err := Sweep(ctx, run, variants, opts...)
	if evals == nil {
		return nil, nil, err
	}
	for _, ev := range evals {
		switch {
		case ev == nil:
		case ev.Provenance == FromJournal:
			sum.FromJournal++
		case ev.Provenance == FromStore:
			sum.FromStore++
		default:
			sum.Computed++
		}
	}
	return evals, sum, err
}

// sweepFromStore attempts the fully warm path: prep record plus every eval
// record present. Any miss — or any decode trouble — returns nil and the
// caller prepares normally; a warm run never degrades below a cold one.
func sweepFromStore(w *workloads.Workload, variants []*hw.Machine, st *store.Store, o *options) ([]*Eval, *SweepSummary) {
	prep, ok, err := st.GetPrep(store.PrepDigest(w, o.lenient, o.lim))
	if err != nil || !ok {
		return nil, nil
	}
	mode := o.modeDigest()
	evals := make([]*Eval, len(variants))
	for i, m := range variants {
		a, ok, err := st.GetEval(prep.LayoutFingerprint, m.Fingerprint(), mode)
		if err != nil || !ok {
			return nil, nil
		}
		conf := prep.Confidence
		if a.Confidence < conf {
			conf = a.Confidence
		}
		if o.minConf > 0 && a.Confidence < o.minConf {
			// The cold run would have failed this variant at the
			// confidence gate; a warm run must not resurrect it. Punt to
			// the cold path so the failure surfaces identically.
			return nil, nil
		}
		diags := make([]guard.Diagnostic, 0, len(prep.Diagnostics)+len(a.Diagnostics))
		diags = append(diags, prep.Diagnostics...)
		diags = append(diags, a.Diagnostics...)
		guard.SortDiagnostics(diags)
		evals[i] = &Eval{
			Machine:     m,
			Analysis:    a,
			Selection:   hotspot.Select(a, o.crit),
			Diagnostics: diags,
			Confidence:  conf,
			Provenance:  FromStore,
		}
	}
	return evals, &SweepSummary{
		Workload:          w.Name,
		LayoutFingerprint: prep.LayoutFingerprint,
		Total:             len(variants),
		FromStore:         len(variants),
		SkippedPrepare:    true,
		Confidence:        prep.Confidence,
		Diagnostics:       prep.Diagnostics,
	}
}

// SweepCachedByName is SweepCached over a named benchmark at the given
// scale.
func SweepCachedByName(ctx context.Context, name string, s workloads.Scale, variants []*hw.Machine, st *store.Store, opts ...Option) ([]*Eval, *SweepSummary, error) {
	w, err := workloads.Get(name, s)
	if err != nil {
		return nil, nil, err
	}
	return SweepCached(ctx, w, variants, st, opts...)
}
