package pipeline

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"skope/internal/store"
	"skope/internal/workloads"
)

// The cold/warm pair quantifies what the content-addressed store buys:
// cold is the full pipeline (parse, profile, model, sweep), warm is the
// same sweep served entirely from the store — no preparation, no
// evaluation, just digest lookups and canonical decoding. The ratio is
// pinned in BENCH_store.json.

func benchWorkload(b *testing.B) *workloads.Workload {
	b.Helper()
	w, err := workloads.Get("srad", workloads.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkSweepCachedCold(b *testing.B) {
	w := benchWorkload(b)
	variants := cachedVariants()
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh store file per iteration keeps every run cold.
		s, err := store.Open(filepath.Join(dir, fmt.Sprintf("cas-%d.journal", i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := SweepCached(context.Background(), w, variants, s); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

func BenchmarkSweepCachedWarm(b *testing.B) {
	w := benchWorkload(b)
	variants := cachedVariants()
	s, err := store.Open(filepath.Join(b.TempDir(), "cas.journal"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, _, err := SweepCached(context.Background(), w, variants, s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := SweepCached(context.Background(), w, variants, s)
		if err != nil {
			b.Fatal(err)
		}
		if !sum.SkippedPrepare {
			b.Fatal("warm iteration was not fully warm")
		}
	}
}
