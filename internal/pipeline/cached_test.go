package pipeline

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/store"
	"skope/internal/workloads"
)

func cachedVariants() []*hw.Machine {
	var variants []*hw.Machine
	for _, bw := range []float64{8, 16, 32, 64} {
		m := hw.BGQ()
		m.MemBandwidthGBs = bw
		variants = append(variants, m)
	}
	return variants
}

// TestSweepCachedWarmIsColdBitIdentical is the store's acceptance test in
// one process: a cold SweepCached populates the store; a second identical
// call is served entirely from it — prep record and all — with zero
// core.Build calls (enforced via the fault point core.Build hits on every
// statement) and Evals equal to the cold run's in every field.
func TestSweepCachedWarmIsColdBitIdentical(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w, err := workloads.Get("srad", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	variants := cachedVariants()

	cold, coldSum, err := SweepCached(context.Background(), w, variants, s)
	if err != nil {
		t.Fatal(err)
	}
	if coldSum.SkippedPrepare {
		t.Error("cold run claims to have skipped preparation")
	}
	if coldSum.Computed != len(variants) {
		t.Errorf("cold run computed %d/%d", coldSum.Computed, len(variants))
	}
	if coldSum.LayoutFingerprint == "" {
		t.Error("cold summary has no layout fingerprint")
	}

	// Any model construction during the warm run is a hard failure.
	disarm := guard.Arm("core.body", func(detail string) {
		t.Errorf("warm run built a BET (at %s)", detail)
	})
	defer disarm()

	warm, warmSum, err := SweepCached(context.Background(), w, variants, s)
	if err != nil {
		t.Fatal(err)
	}
	if !warmSum.SkippedPrepare {
		t.Error("warm run did not skip preparation")
	}
	if warmSum.FromStore != len(variants) {
		t.Errorf("warm run served %d/%d from store", warmSum.FromStore, len(variants))
	}
	if warmSum.LayoutFingerprint != coldSum.LayoutFingerprint {
		t.Errorf("layout fingerprint drifted: %s vs %s", warmSum.LayoutFingerprint, coldSum.LayoutFingerprint)
	}
	if math.Float64bits(warmSum.Confidence) != math.Float64bits(coldSum.Confidence) {
		t.Errorf("summary confidence drifted")
	}

	for i := range variants {
		c, wv := cold[i], warm[i]
		e1, err := hotspot.EncodeAnalysis(c.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := hotspot.EncodeAnalysis(wv.Analysis)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e1, e2) {
			t.Errorf("variant %d: analysis not bit-identical", i)
		}
		if math.Float64bits(c.Confidence) != math.Float64bits(wv.Confidence) {
			t.Errorf("variant %d: confidence drifted", i)
		}
		if !reflect.DeepEqual(c.SpotIDs(), wv.SpotIDs()) {
			t.Errorf("variant %d: selection drifted: %v vs %v", i, c.SpotIDs(), wv.SpotIDs())
		}
		if !reflect.DeepEqual(c.Diagnostics, wv.Diagnostics) {
			t.Errorf("variant %d: diagnostics drifted", i)
		}
		if wv.Provenance != FromStore {
			t.Errorf("variant %d: provenance %v, want FromStore", i, wv.Provenance)
		}
		if c.Provenance != Computed {
			t.Errorf("variant %d: cold provenance %v, want Computed", i, c.Provenance)
		}
	}
}

// TestSweepCachedPartialWarm: a new variant joins the grid; only it is
// computed, the rest are served from the store, and preparation happens
// (the new variant needs the layout).
func TestSweepCachedPartialWarm(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w, err := workloads.Get("srad", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	variants := cachedVariants()
	if _, _, err := SweepCached(context.Background(), w, variants, s); err != nil {
		t.Fatal(err)
	}

	extra := hw.BGQ()
	extra.MemBandwidthGBs = 128
	grown := append(append([]*hw.Machine{}, variants...), extra)
	evals, sum, err := SweepCached(context.Background(), w, grown, s)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SkippedPrepare {
		t.Error("partial warm run claims to have skipped preparation")
	}
	if sum.FromStore != len(variants) || sum.Computed != 1 {
		t.Errorf("partial warm: %d stored / %d computed, want %d / 1", sum.FromStore, sum.Computed, len(variants))
	}
	if evals[len(grown)-1].Provenance != Computed {
		t.Errorf("new variant provenance %v, want Computed", evals[len(grown)-1].Provenance)
	}
	// And now the grown grid is fully warm.
	_, sum2, err := SweepCached(context.Background(), w, grown, s)
	if err != nil {
		t.Fatal(err)
	}
	if !sum2.SkippedPrepare || sum2.FromStore != len(grown) {
		t.Errorf("grown grid not fully warm: %+v", sum2)
	}
}

// TestSweepCachedModeIsolation: changing criteria, lenient mode, or the
// confidence floor must miss the store's warm path.
func TestSweepCachedModeIsolation(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w, err := workloads.Get("srad", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	variants := cachedVariants()[:2]
	if _, _, err := SweepCached(context.Background(), w, variants, s); err != nil {
		t.Fatal(err)
	}

	crit := hotspot.DefaultCriteria()
	crit.MaxSpots = 1
	_, sum, err := SweepCached(context.Background(), w, variants, s, WithCriteria(crit))
	if err != nil {
		t.Fatal(err)
	}
	if sum.SkippedPrepare || sum.FromStore != 0 {
		t.Errorf("criteria change hit the warm path: %+v", sum)
	}
}

// TestSweepCachedBypassesForeignModel: WithModelFunc results are not
// content-addressable; the store must stay untouched.
func TestSweepCachedBypassesForeignModel(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w, err := workloads.Get("srad", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepCached(context.Background(), w, cachedVariants()[:2], s, WithModelFunc(hw.NewVectorAwareModel)); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Errorf("foreign-model sweep wrote %d store records", n)
	}
}

// TestEvaluateStoreHit: Evaluate serves its analysis from the store on the
// second call — grafted, so hot-path extraction still works — while the
// simulation (machine-specific, never cached) runs both times.
func TestEvaluateStoreHit(t *testing.T) {
	s, err := store.Open(filepath.Join(t.TempDir(), "cas.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	run := prepared(t, "srad")
	m := hw.BGQ()

	ev1, err := Evaluate(context.Background(), run, m, WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Provenance != Computed {
		t.Fatalf("first evaluation provenance %v, want Computed", ev1.Provenance)
	}
	ev2, err := Evaluate(context.Background(), run, m, WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Provenance != FromStore {
		t.Fatalf("second evaluation provenance %v, want FromStore", ev2.Provenance)
	}
	e1, _ := hotspot.EncodeAnalysis(ev1.Analysis)
	e2, _ := hotspot.EncodeAnalysis(ev2.Analysis)
	if !bytes.Equal(e1, e2) {
		t.Error("store-served analysis not bit-identical")
	}
	if ev2.HotPath == nil || ev2.HotPath.NumNodes != ev1.HotPath.NumNodes {
		t.Error("hot path lost on store-served evaluation")
	}
	if ev2.Sim == nil {
		t.Error("simulation skipped on store hit (it is machine-specific and never cached)")
	}
}
