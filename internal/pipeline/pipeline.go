// Package pipeline wires the full workflow of the paper's Figure 1: the
// application analysis engine (minilang frontend + branch profiler +
// skeleton translator), the performance analysis engine (BET construction
// + roofline characterization), hot-region analysis (hot spots and hot
// paths), and validation against the machine timing simulator.
//
// It is the high-level API used by the command-line tools, the examples,
// and the benchmark harness. Every entry point takes a context.Context and
// stops promptly when it is canceled; configuration beyond the required
// arguments travels through functional Options (WithCriteria,
// WithModelFunc, WithWorkers, WithProgress).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/journal"
	"skope/internal/libmodel"
	"skope/internal/minilang"
	"skope/internal/profile"
	"skope/internal/resilience"
	"skope/internal/sim"
	"skope/internal/store"
	"skope/internal/translate"
	"skope/internal/workloads"
)

// Stage sentinels. Every error the pipeline returns wraps both its
// underlying cause and the sentinel of the stage that failed, so callers
// can errors.Is(err, pipeline.ErrParse) to distinguish, say, a frontend
// rejection from a simulator failure without string matching.
var (
	// ErrParse marks frontend failures (parse or semantic check).
	ErrParse = errors.New("source analysis failed")
	// ErrProfile marks failures of the local profiling run.
	ErrProfile = errors.New("profiling failed")
	// ErrModel marks failures building or projecting the execution model
	// (translation, BST/BET construction, library models, roofline).
	ErrModel = errors.New("performance modeling failed")
	// ErrSimulate marks machine timing simulator failures.
	ErrSimulate = errors.New("simulation failed")
)

// stageError tags an error with a stage sentinel while leaving its message
// untouched; both the sentinel and the cause stay on the %w chain.
type stageError struct {
	stage error
	err   error
}

func (e *stageError) Error() string   { return e.err.Error() }
func (e *stageError) Unwrap() []error { return []error{e.stage, e.err} }

func stage(sentinel error, err error) error {
	return &stageError{stage: sentinel, err: err}
}

// Run is a prepared workload: parsed, profiled once locally (the paper's
// single hardware-independent profiling pass), translated to a skeleton,
// and modeled as a BET. Everything in Run is machine independent; the same
// Run is evaluated against any number of target machines.
type Run struct {
	Workload *workloads.Workload
	Prog     *minilang.Program
	Profile  *interp.Profile
	Skeleton *translate.Result
	Tree     *bst.Tree
	BET      *core.BET
	Libs     *libmodel.Model
	// Diagnostics records the documented degradations the preparation
	// applied — most importantly translate's missing-profile fallbacks
	// (a branch with no profile entry assumes p=0.5, a while loop assumes
	// one iteration), plus every parser recovery and profiling shortfall
	// under WithLenient. Empty on a fully profiled workload; sorted by
	// stage, code, block.
	Diagnostics []guard.Diagnostic
	// Confidence is the measured-vs-assumed coverage of the preparation:
	// the minimum of the parse confidence (statements kept vs dropped by
	// the lenient parser), the translate confidence (profiled vs assumed
	// control-flow sites), and the BET's confidence. Exactly 1.0 for a
	// fully profiled strict preparation.
	Confidence float64

	layoutOnce sync.Once
	layout     *hotspot.Layout
	layoutErr  error
}

// Layout returns the run's machine-independent analysis layout, resolving
// it on first use and memoizing it for the run's lifetime. The layout's
// Fingerprint is the run's identity in the content-addressed result store;
// its Graft re-links store-served analyses to this run's BET.
func (r *Run) Layout() (*hotspot.Layout, error) {
	r.layoutOnce.Do(func() {
		r.layout, r.layoutErr = hotspot.NewLayout(r.BET, r.Libs)
	})
	if r.layoutErr != nil {
		return nil, stage(ErrModel, fmt.Errorf("pipeline: layout %s: %w", r.Workload.Name, r.layoutErr))
	}
	return r.layout, nil
}

// Degraded reports whether any part of the preparation rests on recovered
// parses, fallback priors, or incomplete profiles.
func (r *Run) Degraded() bool {
	return r.Confidence < 1 || len(r.Diagnostics) > 0
}

// Option configures Evaluate, EvaluateMany, Sweep, and Explorer.
type Option func(*options)

type options struct {
	crit      hotspot.Criteria
	modelFunc func(*hw.Machine) *hw.Model
	// customModel marks a WithModelFunc override: results under a foreign
	// model constructor are not content-addressable (the constructor is
	// not part of any fingerprint), so the store is bypassed.
	customModel bool
	workers     int
	progress    func(explore.Progress)
	lim         *guard.Limits
	retry       resilience.Policy
	timeout     time.Duration
	jnl         *journal.Journal
	st          *store.Store
	lenient     bool
	minConf     float64
	prof        *interp.Profile
}

// storeUsable reports whether the configured store may serve and receive
// results for these options.
func (o *options) storeUsable() bool { return o.st != nil && !o.customModel }

// modeDigest is the evaluation-mode component of this configuration's
// store keys.
func (o *options) modeDigest() string {
	return store.ModeDigest(o.crit, o.lenient, o.minConf)
}

func buildOptions(opts []Option) options {
	o := options{
		crit:      hotspot.DefaultCriteria(),
		modelFunc: hw.NewModel,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithCriteria overrides the hot-spot selection criteria (default
// hotspot.DefaultCriteria — the paper's 90% coverage within 10% of the
// instructions).
func WithCriteria(crit hotspot.Criteria) Option {
	return func(o *options) { o.crit = crit }
}

// WithModelFunc substitutes the roofline model constructor (default
// hw.NewModel) — e.g. hw.NewDivAwareModel or hw.NewVectorAwareModel for
// the paper's ablation studies.
func WithModelFunc(f func(*hw.Machine) *hw.Model) Option {
	return func(o *options) {
		if f != nil {
			o.modelFunc = f
			o.customModel = true
		}
	}
}

// WithWorkers bounds the worker pools of EvaluateMany and Sweep (default
// runtime.GOMAXPROCS). Values < 1 leave the default in place.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithProgress installs a per-variant progress callback on Sweep.
func WithProgress(f func(explore.Progress)) Option {
	return func(o *options) { o.progress = f }
}

// WithLimits overrides the guard limits Prepare enforces on workload
// sources and model construction (default guard.Default — see the -limits
// flag of cmd/skope). nil leaves the defaults in place.
func WithLimits(l *guard.Limits) Option {
	return func(o *options) { o.lim = l }
}

// WithRetry installs a retry policy for transient per-machine failures in
// EvaluateMany, Sweep, and Explorer-built engines (recovered panics,
// per-variant timeouts — never cancellation or validation rejections).
// The default is no retry.
func WithRetry(p resilience.Policy) Option {
	return func(o *options) { o.retry = p }
}

// WithVariantTimeout bounds each per-machine evaluation attempt in
// EvaluateMany, Sweep, and Explorer-built engines. Timed-out attempts
// classify as transient and are retried under WithRetry. d <= 0 (the
// default) enforces no deadline.
func WithVariantTimeout(d time.Duration) Option {
	return func(o *options) { o.timeout = d }
}

// WithLenient switches Prepare into error-recovering mode: syntax errors
// drop the offending statement instead of aborting, a failed profiling run
// degrades to whatever was measured before the failure, and missing branch
// probabilities or trip counts fall back to paper-motivated priors. Every
// substitution is recorded on Run.Diagnostics and reflected in the
// confidence scores. On intact, fully checkable inputs the lenient
// pipeline produces bit-identical results to the strict one.
func WithLenient(on bool) Option {
	return func(o *options) { o.lenient = on }
}

// WithMinConfidence sets the confidence floor for Sweep and Explorer-built
// engines: variants whose assembled analysis scores below c fail with an
// error wrapping explore.ErrLowConfidence instead of ranking alongside
// trustworthy projections. c <= 0 (the default) disables the filter.
func WithMinConfidence(c float64) Option {
	return func(o *options) { o.minConf = c }
}

// WithProfile substitutes a pre-computed branch/loop profile for Prepare's
// local profiling run — the hook for replaying captured profiles or for
// fault-injection studies that corrupt individual entries. nil leaves the
// default profiling pass in place.
func WithProfile(p *interp.Profile) Option {
	return func(o *options) { o.prof = p }
}

// WithJournal attaches a sweep journal to Sweep and Explorer-built
// engines: variants recorded by an earlier run are replayed instead of
// recomputed, and fresh completions are durably appended (fsync per
// record). The journal must belong to the same prepared workload —
// Explorer and Sweep fail with journal.ErrMetaMismatch otherwise.
func WithJournal(j *journal.Journal) Option {
	return func(o *options) { o.jnl = j }
}

// WithStore attaches a content-addressed result store to Evaluate, Sweep,
// SweepCached, and Explorer-built engines. Results whose identity — layout
// fingerprint × machine fingerprint × evaluation-mode digest — is already
// stored are served bit-identically with zero recomputation, across
// sessions, processes, and restarts; fresh results are durably written
// through. The store is ignored under WithModelFunc: a foreign model
// constructor is not part of any fingerprint, so its results are not
// content-addressable. The store is owned by the caller.
func WithStore(s *store.Store) Option {
	return func(o *options) { o.st = s }
}

// Prepare runs the machine-independent half of the pipeline on a workload.
// The frontend and model construction run under guard limits (WithLimits,
// default guard.Default) and under ctx; a recovered panic in any stage
// comes back as an error wrapping guard.ErrPanic rather than unwinding
// the caller.
func Prepare(ctx context.Context, w *workloads.Workload, opts ...Option) (run *Run, err error) {
	defer guard.Recover(&err, "pipeline: prepare %s", w.Name)
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: prepare %s: %w", w.Name, err)
	}
	var diags []guard.Diagnostic
	var prog *minilang.Program
	if o.lenient {
		var pd []guard.Diagnostic
		prog, pd = minilang.ParseLenient(w.Name, w.Source, o.lim)
		diags = append(diags, pd...)
	} else {
		p, perr := minilang.ParseWithLimits(w.Name, w.Source, o.lim)
		if perr != nil {
			return nil, stage(ErrParse, fmt.Errorf("pipeline: parse %s: %w", w.Name, perr))
		}
		prog = p
	}
	// Semantic validity is required for modeling in both modes: the
	// translator and interpreter consume the checker's AST annotations,
	// so an uncheckable program (even a lenient partial one) cannot be
	// degraded past this point.
	if err := minilang.Check(prog); err != nil {
		return nil, stage(ErrParse, fmt.Errorf("pipeline: check %s: %w", w.Name, err))
	}

	// Local profiling pass (gcov substitute). One run, reused across all
	// target machines; WithProfile substitutes a captured profile instead.
	prof := o.prof
	if prof == nil {
		profiler := interp.NewProfiler()
		eng, err := interp.New(prog, &interp.Options{Observer: profiler, Seed: w.Seed})
		if err != nil {
			if !o.lenient {
				return nil, stage(ErrProfile, fmt.Errorf("pipeline: profile %s: %w", w.Name, err))
			}
			diags = append(diags, guard.Diagnostic{
				Severity: guard.SevWarn, Stage: "profile", Code: "partial-profile",
				Message: fmt.Sprintf("%s: profiling run unavailable (%v); unprofiled control flow falls back to priors", w.Name, err),
			})
		} else if err := eng.Run(); err != nil {
			if !o.lenient {
				return nil, stage(ErrProfile, fmt.Errorf("pipeline: profile %s: %w", w.Name, err))
			}
			diags = append(diags, guard.Diagnostic{
				Severity: guard.SevWarn, Stage: "profile", Code: "partial-profile",
				Message: fmt.Sprintf("%s: profiling run failed (%v); keeping measurements up to the failure", w.Name, err),
			})
		}
		prof = profiler.P
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: prepare %s: %w", w.Name, err)
	}

	// Source-to-source translation into the code skeleton.
	sk, err := translate.Translate(prog, prof)
	if err != nil {
		return nil, stage(ErrModel, fmt.Errorf("pipeline: translate %s: %w", w.Name, err))
	}

	// Execution-flow model.
	tree, err := bst.Build(sk.Prog)
	if err != nil {
		return nil, stage(ErrModel, fmt.Errorf("pipeline: bst %s: %w", w.Name, err))
	}
	lim := o.lim.Or()
	bet, err := core.Build(ctx, tree, sk.Input, &core.Options{
		MaxContexts: lim.MaxContexts, MaxNodes: lim.MaxBETNodes,
		Lenient: o.lenient,
	})
	if err != nil {
		return nil, stage(ErrModel, fmt.Errorf("pipeline: bet %s: %w", w.Name, err))
	}
	libs, err := libmodel.Default()
	if err != nil {
		return nil, stage(ErrModel, fmt.Errorf("pipeline: %w", err))
	}
	diags = append(diags, translateDiagnostics(w.Name, sk.Warnings)...)
	guard.SortDiagnostics(diags)
	return &Run{
		Workload: w, Prog: prog, Profile: prof,
		Skeleton: sk, Tree: tree, BET: bet, Libs: libs,
		Diagnostics: diags,
		Confidence:  runConfidence(prog, prof, diags, bet.Confidence),
	}, nil
}

// runConfidence composes the preparation's per-stage confidence scores by
// their minimum (the chain is only as trustworthy as its weakest stage):
//
//   - parse: statements kept over statements seen, where each "parse/syntax"
//     diagnostic accounts for one dropped statement or declaration;
//   - translate: profiled control-flow sites over all sites, where each
//     "translate/missing-profile" diagnostic accounts for one site that fell
//     back to a prior;
//   - model: the BET's ENR-weighted measured-vs-assumed coverage.
func runConfidence(prog *minilang.Program, prof *interp.Profile, diags []guard.Diagnostic, betConf float64) float64 {
	conf := betConf
	dropped, missing := 0, 0
	for _, d := range diags {
		switch {
		case d.Stage == "parse" && d.Code == "syntax":
			dropped++
		case d.Stage == "translate" && d.Code == "missing-profile":
			missing++
		}
	}
	if dropped > 0 {
		kept := minilang.StmtCount(prog)
		if pc := float64(kept) / float64(kept+dropped); pc < conf {
			conf = pc
		}
	}
	if missing > 0 {
		sites := len(prof.Branches) + len(prof.Loops)
		if tc := float64(sites) / float64(sites+missing); tc < conf {
			conf = tc
		}
	}
	return conf
}

// translateDiagnostics converts translate's free-text warnings into
// structured diagnostics, classifying the documented missing-profile
// fallbacks separately from other lossy translations.
func translateDiagnostics(workload string, warnings []string) []guard.Diagnostic {
	if len(warnings) == 0 {
		return nil
	}
	ds := make([]guard.Diagnostic, 0, len(warnings))
	for _, w := range warnings {
		code := "lossy-translation"
		if strings.Contains(w, "no profile entry") {
			code = "missing-profile"
		}
		ds = append(ds, guard.Diagnostic{
			Stage: "translate", Code: code, BlockID: workload, Message: w,
		})
	}
	guard.SortDiagnostics(ds)
	return ds
}

// PrepareByName prepares a named benchmark at the given scale.
func PrepareByName(ctx context.Context, name string, s workloads.Scale, opts ...Option) (*Run, error) {
	w, err := workloads.Get(name, s)
	if err != nil {
		return nil, err
	}
	return Prepare(ctx, w, opts...)
}

// Provenance records where an evaluation's analysis came from. Every
// source is bit-identical by construction — provenance is attribution
// (what work was skipped), never a quality grade.
type Provenance int

const (
	// Computed marks a freshly computed analysis.
	Computed Provenance = iota
	// FromJournal marks an analysis assembled from a sweep journal record
	// written by an earlier run of the same sweep.
	FromJournal
	// FromStore marks an analysis served from the content-addressed
	// result store — possibly computed by another session or process.
	FromStore
)

// String names the provenance for logs and wire encodings.
func (p Provenance) String() string {
	switch p {
	case FromJournal:
		return "journal"
	case FromStore:
		return "store"
	default:
		return "computed"
	}
}

// Eval is one machine-specific evaluation — the unified result type of
// Evaluate, EvaluateMany, Sweep, and SweepCached, and the wire type the
// skoped daemon serves. The analytical fields (Analysis, Selection,
// Diagnostics, Confidence) are always present; the measured fields (Modl,
// Prof, Sim, the quality metrics, HotPath) are populated only by the
// simulating entry points (Evaluate, EvaluateMany) — purely analytical
// sweeps leave them zero so that cached and computed sweep results are
// interchangeable.
type Eval struct {
	Machine *hw.Machine
	// Analysis is the per-block roofline projection over the BET.
	Analysis *hotspot.Analysis
	// Selection is the hot-spot set under the given criteria.
	Selection *hotspot.Selection
	// Modl and Prof are the projected and measured ranked profiles.
	Modl, Prof *profile.Ranked
	// Sim is the raw measured result.
	Sim *sim.Result
	// Quality is the paper's selection-quality metric evaluated over the
	// top-10 ranked views its tables and figures use: the measured
	// coverage of the model's first ten blocks relative to the measured
	// coverage of the measured-best ten.
	Quality float64
	// SelectionQuality is the same metric for the criteria-driven
	// Selection (greedy knapsack under leanness), which on these scaled
	// sources is dominated by budget granularity.
	SelectionQuality float64
	// HotPath is the merged hot path for the selection.
	HotPath *hotpath.Path
	// Diagnostics merges the preparation's diagnostics (parser recoveries,
	// profiling shortfalls, translation fallbacks) with the analysis's
	// (prior substitutions, non-finite projections), sorted by stage,
	// code, block. Empty on a clean strict evaluation.
	Diagnostics []guard.Diagnostic
	// Confidence is the end-to-end measured-vs-assumed coverage: the
	// minimum of the preparation's and the analysis's scores.
	Confidence float64
	// Provenance records whether the analysis was computed, replayed from
	// a sweep journal, or served from the result store.
	Provenance Provenance
}

// Degraded reports whether any part of the evaluation rests on recovered
// parses, fallback priors, incomplete profiles, or non-finite arithmetic.
func (e *Eval) Degraded() bool {
	return e.Confidence < 1 || len(e.Diagnostics) > 0
}

// Evaluate projects the prepared workload onto machine m, simulates the
// measured baseline on the same machine, and computes the selection
// quality. Criteria default to hotspot.DefaultCriteria and the roofline
// model to hw.NewModel; override with WithCriteria and WithModelFunc.
func Evaluate(ctx context.Context, run *Run, m *hw.Machine, opts ...Option) (ev *Eval, err error) {
	defer guard.Recover(&err, "pipeline: evaluate %s on %s", run.Workload.Name, m.Name)
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate %s on %s: %w", run.Workload.Name, m.Name, err)
	}
	// Store path: serve the analysis by content address when one is
	// attached. A hit is grafted onto the run's layout, so hot-path
	// extraction below works identically; any store trouble (layout
	// failure, decode skew, graft mismatch) falls back to computing.
	var analysis *hotspot.Analysis
	prov := Computed
	if o.storeUsable() {
		if l, lerr := run.Layout(); lerr == nil {
			if a, ok, gerr := o.st.GetEval(l.Fingerprint(), m.Fingerprint(), o.modeDigest()); gerr == nil && ok {
				if l.Graft(a) == nil {
					analysis = a
					prov = FromStore
				}
			}
		}
	}
	if analysis == nil {
		analysis, err = hotspot.Analyze(ctx, run.BET, o.modelFunc(m), run.Libs)
		if err != nil {
			return nil, stage(ErrModel, fmt.Errorf("pipeline: analyze %s on %s: %w", run.Workload.Name, m.Name, err))
		}
		if o.storeUsable() {
			if l, lerr := run.Layout(); lerr == nil {
				// Best-effort write-through: a store failure never fails
				// the evaluation, the result is already in hand.
				_ = o.st.PutEval(l.Fingerprint(), m.Fingerprint(), o.modeDigest(), analysis)
			}
		}
	}
	sel := hotspot.Select(analysis, o.crit)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: evaluate %s on %s: %w", run.Workload.Name, m.Name, err)
	}
	simRes, err := sim.Run(ctx, run.Prog, m, &sim.Options{Seed: run.Workload.Seed})
	if err != nil {
		return nil, stage(ErrSimulate, fmt.Errorf("pipeline: simulate %s on %s: %w", run.Workload.Name, m.Name, err))
	}

	modl := profile.FromAnalysis(analysis)
	prof := profile.FromSim(simRes)
	// Run and analysis diagnostics are disjoint sets (preparation stages
	// vs bet/roofline), so a straight merge never duplicates.
	evDiags := make([]guard.Diagnostic, 0, len(run.Diagnostics)+len(analysis.Diagnostics))
	evDiags = append(evDiags, run.Diagnostics...)
	evDiags = append(evDiags, analysis.Diagnostics...)
	guard.SortDiagnostics(evDiags)
	conf := run.Confidence
	if analysis.Confidence < conf {
		conf = analysis.Confidence
	}
	return &Eval{
		Machine:          m,
		Analysis:         analysis,
		Selection:        sel,
		Modl:             modl,
		Prof:             prof,
		Sim:              simRes,
		Quality:          profile.SelectionQuality(prof, modl.TopIDs(10)),
		SelectionQuality: profile.SelectionQuality(prof, spotIDs(sel.Spots)),
		HotPath:          hotpath.Extract(run.BET.Root, sel.Spots),
		Diagnostics:      evDiags,
		Confidence:       conf,
		Provenance:       prov,
	}, nil
}

// spotIDs extracts the block IDs of a selection in rank order.
func spotIDs(spots []*hotspot.Block) []string {
	ids := make([]string, len(spots))
	for i, s := range spots {
		ids[i] = s.BlockID
	}
	return ids
}

// SpotIDs returns the selection's block IDs in rank order.
func (e *Eval) SpotIDs() []string {
	return spotIDs(e.Selection.Spots)
}
