// Package pipeline wires the full workflow of the paper's Figure 1: the
// application analysis engine (minilang frontend + branch profiler +
// skeleton translator), the performance analysis engine (BET construction
// + roofline characterization), hot-region analysis (hot spots and hot
// paths), and validation against the machine timing simulator.
//
// It is the high-level API used by the command-line tools, the examples,
// and the benchmark harness.
package pipeline

import (
	"fmt"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/libmodel"
	"skope/internal/minilang"
	"skope/internal/profile"
	"skope/internal/sim"
	"skope/internal/translate"
	"skope/internal/workloads"
)

// Run is a prepared workload: parsed, profiled once locally (the paper's
// single hardware-independent profiling pass), translated to a skeleton,
// and modeled as a BET. Everything in Run is machine independent; the same
// Run is evaluated against any number of target machines.
type Run struct {
	Workload *workloads.Workload
	Prog     *minilang.Program
	Profile  *interp.Profile
	Skeleton *translate.Result
	Tree     *bst.Tree
	BET      *core.BET
	Libs     *libmodel.Model
}

// Prepare runs the machine-independent half of the pipeline on a workload.
func Prepare(w *workloads.Workload) (*Run, error) {
	prog, err := minilang.Parse(w.Name, w.Source)
	if err != nil {
		return nil, fmt.Errorf("pipeline: parse %s: %v", w.Name, err)
	}
	if err := minilang.Check(prog); err != nil {
		return nil, fmt.Errorf("pipeline: check %s: %v", w.Name, err)
	}

	// Local profiling pass (gcov substitute). One run, reused across all
	// target machines.
	profiler := interp.NewProfiler()
	eng, err := interp.New(prog, &interp.Options{Observer: profiler, Seed: w.Seed})
	if err != nil {
		return nil, fmt.Errorf("pipeline: profile %s: %v", w.Name, err)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("pipeline: profile %s: %v", w.Name, err)
	}

	// Source-to-source translation into the code skeleton.
	sk, err := translate.Translate(prog, profiler.P)
	if err != nil {
		return nil, fmt.Errorf("pipeline: translate %s: %v", w.Name, err)
	}

	// Execution-flow model.
	tree, err := bst.Build(sk.Prog)
	if err != nil {
		return nil, fmt.Errorf("pipeline: bst %s: %v", w.Name, err)
	}
	bet, err := core.Build(tree, sk.Input, nil)
	if err != nil {
		return nil, fmt.Errorf("pipeline: bet %s: %v", w.Name, err)
	}
	libs, err := libmodel.Default()
	if err != nil {
		return nil, fmt.Errorf("pipeline: %v", err)
	}
	return &Run{
		Workload: w, Prog: prog, Profile: profiler.P,
		Skeleton: sk, Tree: tree, BET: bet, Libs: libs,
	}, nil
}

// PrepareByName prepares a named benchmark at the given scale.
func PrepareByName(name string, s workloads.Scale) (*Run, error) {
	w, err := workloads.Get(name, s)
	if err != nil {
		return nil, err
	}
	return Prepare(w)
}

// Eval is a machine-specific evaluation: the analytical projection plus the
// measured (simulated) baseline and their comparison.
type Eval struct {
	Machine *hw.Machine
	// Analysis is the per-block roofline projection over the BET.
	Analysis *hotspot.Analysis
	// Selection is the hot-spot set under the given criteria.
	Selection *hotspot.Selection
	// Modl and Prof are the projected and measured ranked profiles.
	Modl, Prof *profile.Ranked
	// Sim is the raw measured result.
	Sim *sim.Result
	// Quality is the paper's selection-quality metric evaluated over the
	// top-10 ranked views its tables and figures use: the measured
	// coverage of the model's first ten blocks relative to the measured
	// coverage of the measured-best ten.
	Quality float64
	// SelectionQuality is the same metric for the criteria-driven
	// Selection (greedy knapsack under leanness), which on these scaled
	// sources is dominated by budget granularity.
	SelectionQuality float64
	// HotPath is the merged hot path for the selection.
	HotPath *hotpath.Path
}

// Evaluate projects the prepared workload onto machine m with the given
// hot-spot criteria, simulates the measured baseline on the same machine,
// and computes the selection quality.
func Evaluate(run *Run, m *hw.Machine, crit hotspot.Criteria) (*Eval, error) {
	return evaluate(run, m, crit, hw.NewModel(m))
}

// EvaluateWithModel is Evaluate with a custom roofline model (the
// vector-aware and division-aware ablations).
func EvaluateWithModel(run *Run, model *hw.Model, crit hotspot.Criteria) (*Eval, error) {
	return evaluate(run, model.Machine(), crit, model)
}

func evaluate(run *Run, m *hw.Machine, crit hotspot.Criteria, model *hw.Model) (*Eval, error) {
	analysis, err := hotspot.Analyze(run.BET, model, run.Libs)
	if err != nil {
		return nil, fmt.Errorf("pipeline: analyze %s on %s: %v", run.Workload.Name, m.Name, err)
	}
	sel := hotspot.Select(analysis, crit)

	simRes, err := sim.Run(run.Prog, m, &sim.Options{Seed: run.Workload.Seed})
	if err != nil {
		return nil, fmt.Errorf("pipeline: simulate %s on %s: %v", run.Workload.Name, m.Name, err)
	}

	modl := profile.FromAnalysis(analysis)
	prof := profile.FromSim(simRes)
	ids := make([]string, len(sel.Spots))
	for i, s := range sel.Spots {
		ids[i] = s.BlockID
	}
	return &Eval{
		Machine:          m,
		Analysis:         analysis,
		Selection:        sel,
		Modl:             modl,
		Prof:             prof,
		Sim:              simRes,
		Quality:          profile.SelectionQuality(prof, modl.TopIDs(10)),
		SelectionQuality: profile.SelectionQuality(prof, ids),
		HotPath:          hotpath.Extract(run.BET.Root, sel.Spots),
	}, nil
}

// SpotIDs returns the selection's block IDs in rank order.
func (e *Eval) SpotIDs() []string {
	ids := make([]string, len(e.Selection.Spots))
	for i, s := range e.Selection.Spots {
		ids[i] = s.BlockID
	}
	return ids
}
