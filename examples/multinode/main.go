// Multinode: project strong scaling of a distributed stencil code — the
// paper's stated future work ("extend our framework to project hot regions
// and performance bottlenecks for multi-node execution"), implemented here
// as a first-order extension: the skeleton language gains a `comm`
// statement and machines gain interconnect parameters.
//
// The skeleton below is written by hand, the original SKOPE workflow
// (before the paper automated skeleton generation): a SORD-like 3-D
// stencil whose k-planes are divided across MPI ranks, exchanging two halo
// planes per time step. The example sweeps the rank count on both machine
// models and prints where communication overtakes computation — and how
// the hot spot flips from the stencil to the halo exchange.
//
// Run: go run ./examples/multinode
package main

import (
	"context"
	"fmt"
	"log"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

const mpiStencil = `
# SORD-like distributed stencil: nz planes split across ranks.
def main(nx, ny, nz, ranks, nt)
  var u[nz/ranks + 2][ny][nx]
  set planes = nz / ranks
  for t = 0 : nt label="time"
    for k = 1 : planes + 1 label="kloop"
      comp flops=34*ny*nx loads=9*ny*nx stores=2*ny*nx dsize=8 name="stencil"
    end
    comm bytes=8*ny*nx*8 msgs=8 name="halo"
    if prob=0.1
      comm bytes=8 msgs=1 name="allreduce"
      comp flops=64 name="norm"
    end
  end
end
`

func main() {
	prog, err := skeleton.Parse("mpi-stencil", mpiStencil)
	if err != nil {
		log.Fatal(err)
	}
	if err := skeleton.Validate(prog); err != nil {
		log.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		log.Fatal(err)
	}

	const nx, ny, nz, nt = 256, 256, 1024, 50
	fmt.Printf("distributed stencil: %dx%dx%d grid, %d steps, halo = 4 planes in each direction per step (4th-order stencil)\n\n", nz, ny, nx, nt)

	for _, machine := range []*hw.Machine{hw.BGQ(), hw.XeonE5()} {
		model := hw.NewModel(machine)
		fmt.Printf("--- %s (net: %.3g us, %.3g GB/s) ---\n",
			machine.Name, machine.NetLatencyUs, machine.NetBandwidthGBs)
		fmt.Printf("%-7s %-12s %-10s %-10s %-22s\n", "ranks", "time/rank", "comm%", "speedup", "top hot spot")
		base := 0.0
		for _, ranks := range []float64{1, 4, 16, 64, 128, 256, 512, 1024} {
			input := expr.Env{"nx": nx, "ny": ny, "nz": nz, "ranks": ranks, "nt": nt}
			bet, err := core.Build(context.Background(), tree, input, nil)
			if err != nil {
				log.Fatal(err)
			}
			a, err := hotspot.Analyze(context.Background(), bet, model, nil)
			if err != nil {
				log.Fatal(err)
			}
			commT := 0.0
			for _, b := range a.Blocks {
				if b.IsComm {
					commT += b.T
				}
			}
			if ranks == 1 {
				base = a.TotalTime
			}
			fmt.Printf("%-7g %-12.4g %-10.1f %-10.1f %-22s\n",
				ranks, a.TotalTime, 100*commT/a.TotalTime, base/a.TotalTime, a.Blocks[0].BlockID)
		}
		fmt.Println()
	}
	fmt.Println("reading the sweep: per-rank time falls while the stencil dominates,")
	fmt.Println("then flattens as the fixed-size halo exchange takes over — the rank")
	fmt.Println("count where the top hot spot flips to main/halo is the scaling limit")
	fmt.Println("the co-designer must engineer around (bigger planes, wider links, or")
	fmt.Println("overlapped communication).")
}
