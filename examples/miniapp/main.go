// Miniapp: construct a mini-application from a hot path — the co-design
// workflow the paper proposes in §V-C: identify the hot spots of the full
// application on the target machine, back-trace and merge the control flow
// that reaches them, and emit a stripped-down skeleton preserving the hot
// spots, their invocation counts, contexts and data sizes.
//
// The example extracts a SORD mini-app for BG/Q, re-models the emitted
// skeleton, and verifies the mini-app reproduces the full application's
// hot-spot ranking at a fraction of the modeled code size.
//
// Run: go run ./examples/miniapp
package main

import (
	"context"
	"fmt"
	"log"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/skeleton"
	"skope/internal/workloads"
)

func main() {
	run, err := pipeline.PrepareByName(context.Background(), "sord", workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	machine := hw.BGQ()
	ev, err := pipeline.Evaluate(context.Background(), run, machine, pipeline.WithCriteria(hotspot.ScaledCriteria()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("full application: %s\n", run.Workload.Description)
	fmt.Printf("skeleton statements: %d, BET nodes: %d\n\n",
		run.Skeleton.Prog.StaticStatements(), run.BET.NumNodes())
	fmt.Printf("hot spots on %s:\n", machine.Name)
	for i, s := range ev.Selection.Spots {
		fmt.Printf("%2d. %-28s %6.2f%%\n", i+1, s.BlockID, 100*ev.Analysis.Coverage(s))
	}

	// Emit the mini-app skeleton from the merged hot path.
	mini := ev.HotPath.MiniAppSkeleton()
	fmt.Println("\n--- extracted mini-app skeleton ---")
	fmt.Println(mini)

	// The mini-app is itself a valid skeleton: model it and compare.
	miniProg, err := skeleton.Parse("miniapp", mini)
	if err != nil {
		log.Fatal(err)
	}
	if err := skeleton.Validate(miniProg); err != nil {
		log.Fatal(err)
	}
	miniTree, err := bst.Build(miniProg)
	if err != nil {
		log.Fatal(err)
	}
	miniBET, err := core.Build(context.Background(), miniTree, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	miniAnalysis, err := hotspot.Analyze(context.Background(), miniBET, hw.NewModel(machine), run.Libs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mini-app: %d skeleton statements (%.0f%% of the full app)\n\n",
		miniProg.StaticStatements(),
		100*float64(miniProg.StaticStatements())/float64(run.Skeleton.Prog.StaticStatements()))
	fmt.Println("mini-app projected profile (should preserve the hot ranking):")
	for i, b := range miniAnalysis.TopN(5) {
		fmt.Printf("%2d. %-28s %6.2f%%\n", i+1, b.Label, 100*miniAnalysis.Coverage(b))
	}
}
