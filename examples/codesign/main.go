// Codesign: sweep hypothetical architecture configurations and watch hot
// spots and bottlenecks move — the software-hardware co-design use case the
// paper motivates. No simulation runs: every point is an analytical
// projection over the same Bayesian Execution Tree, driven through the
// design-space exploration engine — a bounded worker pool with memoized
// per-block characterization, so a grid of hundreds of variants costs
// little more than the handful of distinct roofline characterizations
// inside it.
//
// The workload is CHARGEI (particle-in-cell deposition), whose balance
// between the compute-heavy weight loop and the memory-bound scatter makes
// the bottleneck sensitive to the machine's bandwidth and SIMD width.
//
// Run: go run ./examples/codesign
package main

import (
	"context"
	"fmt"
	"log"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/workloads"
)

func main() {
	ctx := context.Background()
	run, err := pipeline.PrepareByName(ctx, "chargei", workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", run.Workload.Description)

	// One engine for the whole study: the memo cache carries across
	// sweeps, so re-visited parameter subsets are free.
	eng, err := pipeline.Explorer(run)
	if err != nil {
		log.Fatal(err)
	}

	// Three one-dimensional sweeps around a BG/Q-like base, as in the
	// paper's narrative: vary one first-order parameter, watch the top hot
	// spot and its roofline verdict flip.
	oneD := []struct {
		title string
		axis  explore.Axis
	}{
		{"sweep 1: memory concurrency (outstanding misses; base: BG/Q-like)",
			explore.Axis{Param: "mem-concurrency", Values: []float64{1, 2, 4, 8, 16, 32}}},
		{"sweep 2: memory latency (cycles)",
			explore.Axis{Param: "mem-latency", Values: []float64{60, 120, 180, 360, 720}}},
		{"sweep 3: scalar FP throughput (flops/cycle)",
			explore.Axis{Param: "fp-per-cycle", Values: []float64{1, 2, 4, 8, 16}}},
	}
	for _, sw := range oneD {
		fmt.Println(sw.title)
		fmt.Printf("%-28s %-26s %-10s %-14s\n", "variant", "top hot spot", "cov%", "bottleneck")
		grid := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{sw.axis}}
		variants, err := grid.Variants()
		if err != nil {
			log.Fatal(err)
		}
		analyses, err := eng.Sweep(ctx, variants)
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range analyses {
			reportTop(variants[i], a)
		}
		fmt.Println()
	}

	// The full co-design loop: a 3-D grid (bandwidth x concurrency x FP
	// throughput), ranked by projected time and reduced to its time/cost
	// Pareto frontier. The engine's cache statistics show how much of the
	// grid was repeated characterization work.
	grid := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "mem-bandwidth", Values: []float64{14, 28, 56, 112}},
		{Param: "mem-concurrency", Values: []float64{2, 4, 8, 16}},
		{Param: "fp-per-cycle", Values: []float64{2, 4, 8}},
	}}
	variants, err := grid.Variants()
	if err != nil {
		log.Fatal(err)
	}
	analyses, err := eng.Sweep(ctx, variants)
	if err != nil {
		log.Fatal(err)
	}
	base, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(hw.BGQ()), run.Libs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep 4: %d-variant grid, time/cost Pareto frontier\n", len(variants))
	for _, p := range explore.Pareto(variants, analyses, explore.RelativeCost) {
		fmt.Printf("  cost %6.2f  time %.4g s  speedup %5.2fx  %s\n",
			p.Cost, p.Time, base.TotalTime/p.Time, p.Machine.Name)
	}
	if best := explore.Best(analyses); best >= 0 {
		fmt.Printf("fastest design: %s (%.2fx over BG/Q)\n",
			variants[best].Name, base.TotalTime/analyses[best].TotalTime)
	}
	stats := eng.CacheStats()
	fmt.Printf("engine cache: %.0f%% hit rate over the whole study (%d hits, %d misses)\n\n",
		100*stats.HitRate(), stats.Hits, stats.Misses)

	fmt.Println("reading the sweeps: with few outstanding misses or slow memory the")
	fmt.Println("indirect gather/scatter dominates (memory-bound); as the memory")
	fmt.Println("system improves or FP throughput shrinks, the per-particle weight")
	fmt.Println("computation takes over (compute-bound). A balanced design sits where")
	fmt.Println("the top spot flips — found here in milliseconds of pure analysis,")
	fmt.Println("with no simulation of any configuration.")
}

// reportTop prints a variant's top hot spot and its roofline verdict.
func reportTop(m *hw.Machine, a *hotspot.Analysis) {
	top := a.Blocks[0]
	bound := "compute"
	if top.MemoryBound {
		bound = "memory"
	}
	// The grid names variants "BG/Q[param=value]"; show just the tag.
	tag := m.Name
	if i := len("BG/Q["); len(tag) > i && tag[i-1] == '[' {
		tag = tag[i : len(tag)-1]
	}
	fmt.Printf("%-28s %-26s %-10.1f %-14s\n", tag, top.BlockID, 100*a.Coverage(top), bound)
}
