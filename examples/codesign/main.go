// Codesign: sweep hypothetical architecture configurations and watch hot
// spots and bottlenecks move — the software-hardware co-design use case the
// paper motivates. No simulation runs: every point is an analytical
// projection over the same Bayesian Execution Tree, so the sweep covers a
// design space in milliseconds.
//
// The workload is CHARGEI (particle-in-cell deposition), whose balance
// between the compute-heavy weight loop and the memory-bound scatter makes
// the bottleneck sensitive to the machine's bandwidth and SIMD width.
//
// Run: go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/workloads"
)

func main() {
	run, err := pipeline.PrepareByName("chargei", workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n\n", run.Workload.Description)

	fmt.Println("sweep 1: memory concurrency (outstanding misses; base: BG/Q-like)")
	fmt.Printf("%-10s %-26s %-10s %-14s\n", "MLP", "top hot spot", "cov%", "bottleneck")
	for _, mlp := range []float64{1, 2, 4, 8, 16, 32} {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("bgq-mlp%g", mlp)
		m.MemConcurrency = mlp
		reportTop(run, m)
	}

	fmt.Println("\nsweep 2: memory latency")
	fmt.Printf("%-10s %-26s %-10s %-14s\n", "lat (cyc)", "top hot spot", "cov%", "bottleneck")
	for _, lat := range []int{60, 120, 180, 360, 720} {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("bgq-lat%d", lat)
		m.MemLatencyCyc = lat
		reportTop(run, m)
	}

	fmt.Println("\nsweep 3: scalar FP throughput (flops/cycle)")
	fmt.Printf("%-10s %-26s %-10s %-14s\n", "fp/cyc", "top hot spot", "cov%", "bottleneck")
	for _, fp := range []float64{1, 2, 4, 8, 16} {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("bgq-fp%g", fp)
		m.FPOpsPerCycle = fp
		reportTop(run, m)
	}

	fmt.Println("\nreading the sweeps: with few outstanding misses or slow memory the")
	fmt.Println("indirect gather/scatter dominates (memory-bound); as the memory")
	fmt.Println("system improves or FP throughput shrinks, the per-particle weight")
	fmt.Println("computation takes over (compute-bound). A balanced design sits where")
	fmt.Println("the top spot flips — found here in milliseconds of pure analysis,")
	fmt.Println("with no simulation of any configuration.")
}

// reportTop projects the workload on m analytically — no simulation — and
// prints the top hot spot and its roofline verdict.
func reportTop(run *pipeline.Run, m *hw.Machine) {
	analysis, err := hotspot.Analyze(run.BET, hw.NewModel(m), run.Libs)
	if err != nil {
		log.Fatal(err)
	}
	top := analysis.Blocks[0]
	bound := "compute"
	if top.MemoryBound {
		bound = "memory"
	}
	// Identify the varying parameter value from the synthetic name.
	fmt.Printf("%-10s %-26s %-10.1f %-14s\n",
		m.Name[len("bgq-"):], top.BlockID, 100*analysis.Coverage(top), bound)
}
