// Quickstart: model a code skeleton's execution flow, identify hot spots
// on a target machine, and print the hot path — the library's core loop in
// ~60 lines.
//
// The input here is the paper's Figure-2-style pedagogical skeleton; for
// analyzing real (minilang) sources, see examples/crossmachine and the
// pipeline package.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/libmodel"
	"skope/internal/skeleton"
)

const workload = `
def main(n, m)
  var grid[n][m]
  for t = 0 : 10 label="time"
    call stencil(n, m)
    if prob=0.05
      call refine(n, m)
    end
  end
  lib exp count=n name="boundary_exp"
end

def stencil(n, m)
  for i = 1 : n - 1 label="rows"
    comp flops=9*m loads=5*m stores=m dsize=8 name="sweep"
  end
end

def refine(n, m)
  comp flops=50*n*m loads=4*n*m dsize=8 name="refine_kernel"
end
`

func main() {
	// 1. Parse the code skeleton (normally produced by the translator
	//    from application source plus a branch-profiling run).
	prog, err := skeleton.Parse("quickstart", workload)
	if err != nil {
		log.Fatal(err)
	}
	if err := skeleton.Validate(prog); err != nil {
		log.Fatal(err)
	}

	// 2. Build the Bayesian Execution Tree for a concrete input. The BET
	//    models the whole execution flow without iterating any loop, so
	//    this is instant regardless of n and m.
	tree, err := bst.Build(prog)
	if err != nil {
		log.Fatal(err)
	}
	input := expr.Env{"n": 2048, "m": 2048}
	bet, err := core.Build(context.Background(), tree, input, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BET: %d nodes for a %gx%g input (size ratio %.2f)\n\n",
		bet.NumNodes(), input["n"], input["m"], bet.SizeRatio())

	// 3. Project per-block times on a target machine with the extended
	//    roofline model and select hot spots.
	libs, err := libmodel.Default()
	if err != nil {
		log.Fatal(err)
	}
	machine := hw.BGQ()
	analysis, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(machine), libs)
	if err != nil {
		log.Fatal(err)
	}
	sel := hotspot.Select(analysis, hotspot.Criteria{TimeCoverage: 0.95, CodeLeanness: 1, MaxSpots: 5})

	fmt.Printf("hot spots on %s (%.1f%% of projected time):\n", machine.Name, 100*sel.Coverage)
	for i, s := range sel.Spots {
		bound := "compute"
		if s.MemoryBound {
			bound = "memory"
		}
		fmt.Printf("%2d. %-22s %6.2f%%  %s-bound, %g invocations\n",
			i+1, s.BlockID, 100*analysis.Coverage(s), bound, s.Invocations)
	}

	// 4. Extract and print the hot path — the stripped-down execution
	//    flow that reaches the hot spots, with contexts attached.
	fmt.Println("\nhot path:")
	fmt.Print(hotpath.Extract(bet.Root, sel.Spots).Render())
}
