// Crossmachine: the paper's §I motivation — hot spots found on one machine
// do not transfer to another, but the analytical model projects the right
// ones for each. The example profiles SORD on both simulated machines,
// shows how the measured top-10 lists differ, and compares the selection
// quality of (a) the model's projection versus (b) reusing the other
// machine's empirical selection.
//
// Run: go run ./examples/crossmachine
package main

import (
	"context"
	"fmt"
	"log"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/profile"
	"skope/internal/workloads"
)

func main() {
	run, err := pipeline.PrepareByName(context.Background(), "sord", workloads.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	crit := hotspot.ScaledCriteria()
	bgq, err := pipeline.Evaluate(context.Background(), run, hw.BGQ(), pipeline.WithCriteria(crit))
	if err != nil {
		log.Fatal(err)
	}
	xeon, err := pipeline.Evaluate(context.Background(), run, hw.XeonE5(), pipeline.WithCriteria(crit))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n\n", run.Workload.Description)
	fmt.Printf("%-4s %-28s %-28s\n", "rank", "measured on BG/Q", "measured on Xeon")
	q10, x10 := bgq.Prof.TopIDs(10), xeon.Prof.TopIDs(10)
	for i := 0; i < 10 && (i < len(q10) || i < len(x10)); i++ {
		fmt.Printf("%-4d %-28s %-28s\n", i+1, at(q10, i), at(x10, i))
	}
	fmt.Printf("\nshared blocks in the two top-10 lists: %d/10\n", profile.TopOverlap(q10, x10))

	fmt.Println("\nselection quality on BG/Q (measured coverage vs best selection):")
	fmt.Printf("  model projection for BG/Q:        %.3f\n",
		profile.SelectionQuality(bgq.Prof, bgq.Modl.TopIDs(10)))
	fmt.Printf("  Xeon's empirical selection reused: %.3f\n",
		profile.SelectionQuality(bgq.Prof, x10))

	fmt.Println("\nselection quality on Xeon:")
	fmt.Printf("  model projection for Xeon:         %.3f\n",
		profile.SelectionQuality(xeon.Prof, xeon.Modl.TopIDs(10)))
	fmt.Printf("  BG/Q's empirical selection reused: %.3f\n",
		profile.SelectionQuality(xeon.Prof, q10))

	fmt.Println("\nthe model, parameterized per machine, tracks each target; an")
	fmt.Println("empirical selection carried across machines degrades whenever the")
	fmt.Println("ranking shifts — the paper's argument for model-based co-design.")
}

func at(ids []string, i int) string {
	if i < len(ids) {
		return ids[i]
	}
	return "-"
}
