package skope_test

import (
	"context"
	"sync"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/experiments"
	"skope/internal/expr"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/libmodel"
	"skope/internal/minilang"
	"skope/internal/pipeline"
	"skope/internal/report"
	"skope/internal/sim"
	"skope/internal/skeleton"
	"skope/internal/translate"
	"skope/internal/workloads"
)

// benchCtx is a shared experiment context; the expensive profiling and
// simulation passes run once and are reused, so each benchmark measures the
// artifact regeneration itself.
var (
	benchCtx     *experiments.Context
	benchCtxOnce sync.Once
)

func ctx(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() {
		benchCtx = experiments.NewContext(workloads.ScaleTest)
		// Warm every evaluation the experiments touch.
		for _, name := range workloads.Names() {
			for _, mach := range []string{"bgq", "xeon"} {
				if _, err := benchCtx.Eval(name, mach); err != nil {
					panic(err)
				}
			}
		}
	})
	return benchCtx
}

// BenchmarkFig2PedagogicalBET regenerates the Figure 2 artifact: skeleton,
// BST, and BET of the pedagogical example.
func BenchmarkFig2PedagogicalBET(b *testing.B) {
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3HotPathMerge regenerates Figure 3: per-spot back-traces and
// the merged hot path.
func BenchmarkFig3HotPathMerge(b *testing.B) {
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1HotSpots regenerates Table I (top-10 Prof vs Modl for all
// five benchmarks on both machines).
func BenchmarkTable1HotSpots(b *testing.B) {
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2CFD regenerates Table II (CFD top-10).
func BenchmarkTable2CFD(b *testing.B) {
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SORDQuality regenerates Figure 4 (SORD selection quality
// incl. cross-machine portability) and reports the model's quality.
func BenchmarkFig4SORDQuality(b *testing.B) {
	c := ctx(b)
	ev, err := c.Eval("sord", "bgq")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ev.Quality, "quality")
}

// BenchmarkFig5SORDXeon regenerates Figure 5 (SORD coverage curves, Xeon).
func BenchmarkFig5SORDXeon(b *testing.B) {
	benchSeries(b, experiments.Fig5)
}

// BenchmarkFig6Breakdown regenerates Figure 6 (SORD Tc/Tm/overlap on BG/Q).
func BenchmarkFig6Breakdown(b *testing.B) {
	benchTable(b, experiments.Fig6)
}

// BenchmarkFig7BreakdownXeon regenerates Figure 7 (same on Xeon).
func BenchmarkFig7BreakdownXeon(b *testing.B) {
	benchTable(b, experiments.Fig7)
}

// BenchmarkFig8IssueRate regenerates Figure 8 (measured issue rate and
// instructions per L1 miss).
func BenchmarkFig8IssueRate(b *testing.B) {
	benchTable(b, experiments.Fig8)
}

// BenchmarkFig9HotPath regenerates Figure 9 (SORD hot path on BG/Q).
func BenchmarkFig9HotPath(b *testing.B) {
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10CFD regenerates Figure 10 (CFD coverage curves).
func BenchmarkFig10CFD(b *testing.B) { benchSeries(b, experiments.Fig10) }

// BenchmarkFig11SRAD regenerates Figure 11 (SRAD coverage curves).
func BenchmarkFig11SRAD(b *testing.B) { benchSeries(b, experiments.Fig11) }

// BenchmarkFig12CHARGEI regenerates Figure 12 (CHARGEI coverage curves).
func BenchmarkFig12CHARGEI(b *testing.B) { benchSeries(b, experiments.Fig12) }

// BenchmarkFig13STASSUIJ regenerates Figure 13 (STASSUIJ coverage curves).
func BenchmarkFig13STASSUIJ(b *testing.B) { benchSeries(b, experiments.Fig13) }

// BenchmarkBETSize regenerates the §IV-B BET-size table and reports the
// average size ratio (paper: 0.88).
func BenchmarkBETSize(b *testing.B) {
	c := ctx(b)
	run, err := c.Run("sord")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BETSizes(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.BET.SizeRatio(), "size-ratio")
}

// BenchmarkSelectionQualityAll regenerates the all-cases quality summary
// (paper: average 0.958, min 0.80) and reports the average.
func BenchmarkSelectionQualityAll(b *testing.B) {
	c := ctx(b)
	sum, n := 0.0, 0
	for _, name := range workloads.Names() {
		for _, mach := range []string{"bgq", "xeon"} {
			ev, err := c.Eval(name, mach)
			if err != nil {
				b.Fatal(err)
			}
			sum += ev.Quality
			n++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.QualitySummary(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum/float64(n), "avg-quality")
}

// BenchmarkAblations regenerates the error-source ablation table (division
// latency and vectorization model extensions).
func BenchmarkAblations(b *testing.B) {
	benchTable(b, experiments.Ablations)
}

// BenchmarkHitRateSensitivity regenerates the cache-hit-assumption sweep
// (extension of the paper's §V-A footnote).
func BenchmarkHitRateSensitivity(b *testing.B) {
	benchSeries(b, experiments.HitRateSensitivity)
}

// BenchmarkFutureProjection regenerates the conceptual-machine projection
// (the paper's headline use case: no measurement is possible).
func BenchmarkFutureProjection(b *testing.B) {
	benchTable(b, experiments.FutureProjection)
}

// BenchmarkBETConstruction measures raw BET construction for each
// benchmark's translated skeleton — the paper's "analysis in minutes"
// claim; here it is micro- to milliseconds.
func BenchmarkBETConstruction(b *testing.B) {
	c := ctx(b)
	for _, name := range workloads.Names() {
		run, err := c.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(context.Background(), run.Tree, run.Skeleton.Input, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyze measures roofline characterization plus hot-spot
// selection over a built BET.
func BenchmarkAnalyze(b *testing.B) {
	c := ctx(b)
	libs, err := libmodel.Default()
	if err != nil {
		b.Fatal(err)
	}
	model := hw.NewModel(hw.BGQ())
	for _, name := range workloads.Names() {
		run, err := c.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := hotspot.Analyze(context.Background(), run.BET, model, libs)
				if err != nil {
					b.Fatal(err)
				}
				sel := hotspot.Select(a, hotspot.ScaledCriteria())
				hotpath.Extract(run.BET.Root, sel.Spots)
			}
		})
	}
}

// BenchmarkModelInputInvariance demonstrates the paper's core scaling
// property: BET construction time does not grow with the input size (the
// loop bounds change by six orders of magnitude; the work does not).
func BenchmarkModelInputInvariance(b *testing.B) {
	prog, _ := workloads.Pedagogical()
	tree := bst.MustBuild(prog)
	for _, n := range []float64{1e3, 1e6, 1e9} {
		input := expr.Env{"n": n, "m": n}
		b.Run(expr.Const(n).String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(context.Background(), tree, input, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures the validation substrate itself: a full
// timing simulation of SORD on BG/Q (the expensive path the analytical
// model avoids).
func BenchmarkSimulator(b *testing.B) {
	c := ctx(b)
	run, err := c.Run("sord")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(context.Background(), run.Prog, hw.BGQ(), &sim.Options{Seed: run.Workload.Seed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures the complete machine-independent pipeline
// (parse, profile, translate, BET) for SORD.
func BenchmarkFullPipeline(b *testing.B) {
	w, err := workloads.Get("sord", workloads.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Prepare(context.Background(), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkeletonParse measures the skeleton frontend on the SORD
// translation output.
func BenchmarkSkeletonParse(b *testing.B) {
	c := ctx(b)
	run, err := c.Run("sord")
	if err != nil {
		b.Fatal(err)
	}
	text := run.Skeleton.Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skeleton.Parse("bench", text); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable(b *testing.B, f func(*experiments.Context) (tabler, error)) {
	b.Helper()
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(c); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeries(b *testing.B, f func(*experiments.Context) (serieser, error)) {
	b.Helper()
	c := ctx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(c); err != nil {
			b.Fatal(err)
		}
	}
}

type tabler = *report.Table
type serieser = *report.Series

// BenchmarkTranslate measures the source-to-source translation (minilang ->
// skeleton) of SORD, including skeleton re-parse and validation.
func BenchmarkTranslate(b *testing.B) {
	c := ctx(b)
	run, err := c.Run("sord")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := translate.Translate(run.Prog, run.Profile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures raw interpreter throughput (statements per
// second) on the CHARGEI workload without any observer cost.
func BenchmarkInterpreter(b *testing.B) {
	w, err := workloads.Get("chargei", workloads.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	prog := minilang.MustCheck(minilang.MustParse(w.Name, w.Source))
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		e, err := interp.New(prog, &interp.Options{Seed: w.Seed})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		steps = e.Steps()
	}
	b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
}

// BenchmarkCommScalingProjection measures the multi-node strong-scaling
// sweep (the paper's future-work extension): ten rank counts, each a fresh
// BET build plus analysis, no simulation.
func BenchmarkCommScalingProjection(b *testing.B) {
	prog := skeleton.MustParse("mpi", `
def main(nx, ny, nz, ranks, nt)
  set planes = nz / ranks
  for t = 0 : nt label="time"
    for k = 0 : planes label="kloop"
      comp flops=30*ny*nx loads=8*ny*nx stores=2*ny*nx name="stencil"
    end
    comm bytes=4*ny*nx*8 msgs=4 name="halo"
  end
end
`)
	tree := bst.MustBuild(prog)
	model := hw.NewModel(hw.BGQ())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ranks := range []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
			bet, err := core.Build(context.Background(), tree, expr.Env{
				"nx": 256, "ny": 256, "nz": 512, "ranks": ranks, "nt": 50,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := hotspot.Analyze(context.Background(), bet, model, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateManyParallel measures the concurrent two-machine
// evaluation against its sequential equivalent (BenchmarkTable1-style work).
func BenchmarkEvaluateManyParallel(b *testing.B) {
	c := ctx(b)
	run, err := c.Run("srad")
	if err != nil {
		b.Fatal(err)
	}
	machines := []*hw.Machine{hw.BGQ(), hw.XeonE5()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.EvaluateMany(context.Background(), run, machines, pipeline.WithCriteria(hotspot.ScaledCriteria())); err != nil {
			b.Fatal(err)
		}
	}
}
